"""UVP and bottleneck property: Theorems 3, 4 and Lemma 1 cross-checks."""

from repro.core.catalan import catalan_slots, is_catalan
from repro.core.enumeration import enumerate_forks
from repro.core.uvp import (
    bottleneck_holds_in_fork,
    has_bottleneck_property,
    has_uvp,
    has_uvp_by_margin,
    uvp_holds_in_fork,
    uvp_slots,
    uvp_slots_consistent_tiebreak,
)

from tests.conftest import all_strings, random_strings


class TestTheorem3EquivalentCharacterisations:
    def test_catalan_route_equals_margin_route_exhaustive(self):
        """Theorem 3 ⇔ Lemma 1, via two independent implementations."""
        for word in all_strings("hHA", 8, min_length=1):
            for slot in range(1, len(word) + 1):
                assert has_uvp(word, slot) == has_uvp_by_margin(word, slot), (
                    word,
                    slot,
                )

    def test_catalan_route_equals_margin_route_random(self):
        for word in random_strings("hHA", 60, 10, 60, seed=51):
            for slot in range(1, len(word) + 1):
                assert has_uvp(word, slot) == has_uvp_by_margin(word, slot)

    def test_uvp_requires_uniquely_honest(self):
        assert not has_uvp("H", 1)
        assert not has_uvp("A", 1)
        assert has_uvp("h", 1)

    def test_uvp_slots_listing(self):
        word = "hHhA"
        expected = [
            s for s in range(1, 5) if has_uvp(word, s)
        ]
        assert uvp_slots(word) == expected


class TestStructuralGroundTruth:
    def test_uvp_against_enumerated_forks(self):
        """Definition-level UVP over all capped forks equals Theorem 3.

        UVP quantifies over *all* forks (Definition 4), so the enumeration
        must not restrict to closed forks — an open fork with a trailing
        adversarial tine is a legitimate UVP counterexample.
        """
        for word in all_strings("hHA", 4, min_length=1):
            forks = enumerate_forks(word, 2, 2, closed_only=False)
            for slot in range(1, len(word) + 1):
                if word[slot - 1] != "h":
                    continue
                structural = all(uvp_holds_in_fork(f, slot) for f in forks)
                assert structural == has_uvp(word, slot), (word, slot)

    def test_bottleneck_against_enumerated_forks(self):
        """Bottleneck ⇔ Catalan for honest slots (Facts 2, 3)."""
        for word in all_strings("hHA", 4, min_length=1):
            forks = enumerate_forks(word, 2, 2, closed_only=False)
            for slot in range(1, len(word) + 1):
                if word[slot - 1] == "A":
                    continue
                structural = all(
                    bottleneck_holds_in_fork(f, slot) for f in forks
                )
                assert structural == is_catalan(word, slot), (word, slot)

    def test_multiply_honest_catalan_has_bottleneck_but_not_uvp(self):
        word = "HHH"
        assert has_bottleneck_property(word, 2)
        assert not has_uvp(word, 2)
        forks = enumerate_forks(word, 2, 2, closed_only=False)
        assert all(bottleneck_holds_in_fork(f, 2) for f in forks)
        # some fork places two vertices at slot 2, defeating uniqueness
        assert not all(uvp_holds_in_fork(f, 2) for f in forks)


class TestTheorem4ConsistentTieBreaking:
    def test_consecutive_catalan_gives_uvp(self):
        word = "HHHH"
        slots = uvp_slots_consistent_tiebreak(word)
        # slots 1,2,3 have a Catalan successor; slot 4 does not
        assert slots == [1, 2, 3]

    def test_no_unique_slots_needed(self):
        """Theorem 2's point: UVP slots exist even when p_h = 0."""
        for word in random_strings("HA", 30, 10, 40, seed=52):
            catalan = set(catalan_slots(word))
            for slot in uvp_slots_consistent_tiebreak(word):
                assert slot in catalan
                assert word[slot - 1] == "H" or slot + 1 in catalan

    def test_consistent_is_superset_of_standard(self):
        for word in random_strings("hHA", 40, 5, 40, seed=53):
            standard = set(uvp_slots(word))
            consistent = set(uvp_slots_consistent_tiebreak(word))
            assert standard <= consistent


class TestWindowImplications:
    def test_uvp_in_window_implies_settlement(self):
        """Eq. (1): a UVP slot in [s, s+k−1] settles slot s.

        The tighter window comes from the paper's own refinement via
        Fact 2 (proof of Theorem 1), matching our |y| ≥ k convention for
        the violation event (the Section 6.6 / Table 1 convention).
        """
        from repro.core.settlement import is_k_settled

        for word in random_strings("hHA", 50, 10, 40, seed=54):
            slots = set(uvp_slots(word))
            for s in range(1, len(word) + 1):
                for k in range(0, len(word) - s + 1):
                    window_end = min(s + max(k - 1, 0), len(word))
                    if any(s <= t <= window_end for t in slots):
                        assert is_k_settled(word, s, k), (word, s, k)
