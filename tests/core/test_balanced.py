"""Balanced forks, Fact 6 constructively, slot divergence (Defs. 18, 25)."""

from repro.core.balanced import (
    build_x_balanced_fork,
    divergence_witnesses,
    figure_2_fork,
    figure_3_fork,
    is_balanced,
    is_x_balanced,
    slot_divergence,
)
from repro.core.forks import Fork
from repro.core.margin import relative_margin

from tests.conftest import random_strings


class TestFigureForks:
    def test_figure_2_is_balanced(self):
        fork = figure_2_fork()
        fork.validate()
        assert is_balanced(fork)

    def test_figure_2_witness_tines_fully_disjoint(self):
        fork = figure_2_fork()
        witnesses = divergence_witnesses(fork, 0)
        assert witnesses
        left, right = witnesses[0]
        labels_left = {v.label for v in left.path_from_root() if v.label}
        labels_right = {v.label for v in right.path_from_root() if v.label}
        assert labels_left.isdisjoint(labels_right)

    def test_figure_3_is_x_balanced_not_balanced(self):
        fork = figure_3_fork()
        fork.validate()
        assert is_x_balanced(fork, 2)
        assert not is_balanced(fork)

    def test_linear_fork_not_balanced(self):
        fork = Fork("hh")
        v1 = fork.add_vertex(fork.root, 1)
        fork.add_vertex(v1, 2)
        assert not is_balanced(fork)


class TestFact6Constructive:
    def test_balanced_fork_built_iff_margin_nonnegative(self):
        """Fact 6 constructively, including the self-pair corner.

        A fork is always built when ``μ_x(y) ≥ 0`` and the suffix contains
        an adversarial slot (then every witness is realisable as two
        distinct chains); never when ``μ_x(y) < 0``.  When the suffix has
        no adversarial slot the margin convention may be witnessed only by
        a self-pair with empty reserve, which cannot present two distinct
        chains — the builder is allowed to return ``None`` there.
        """
        for word in random_strings("hHA", 50, 2, 16, seed=71):
            for prefix_length in range(0, len(word)):
                fork = build_x_balanced_fork(word, prefix_length)
                margin_ok = relative_margin(word, prefix_length) >= 0
                suffix_has_adversarial = "A" in word[prefix_length:]
                if not margin_ok:
                    assert fork is None, (word, prefix_length)
                elif suffix_has_adversarial:
                    assert fork is not None, (word, prefix_length)
                if fork is not None:
                    assert margin_ok
                    assert is_x_balanced(fork, prefix_length), (
                        word,
                        prefix_length,
                    )

    def test_built_forks_satisfy_axioms(self):
        for word in random_strings("hHA", 30, 4, 16, seed=72):
            fork = build_x_balanced_fork(word, 0)
            if fork is not None:
                fork.validate()

    def test_figure_strings_round_trip(self):
        assert build_x_balanced_fork("hAhAhA", 0) is not None
        assert build_x_balanced_fork("hhhAhA", 2) is not None
        assert build_x_balanced_fork("hhhhh", 0) is None


class TestSlotDivergence:
    def test_linear_fork_has_zero_divergence(self):
        fork = Fork("hhh")
        parent = fork.root
        for slot in (1, 2, 3):
            parent = fork.add_vertex(parent, slot)
        assert slot_divergence(fork) == 0

    def test_balanced_fork_divergence(self):
        fork = figure_2_fork()
        # the two tines diverge at genesis; the later tine label is 5 or 6
        assert slot_divergence(fork) >= 5

    def test_divergence_bounded_by_length(self):
        for word in random_strings("hHA", 20, 4, 12, seed=73):
            fork = build_x_balanced_fork(word, 0)
            if fork is not None:
                assert slot_divergence(fork) <= len(word)
