"""Slot distributions: the Bernoulli condition and dominance (Defs. 6, 7)."""

import math
import random

import pytest

from repro.core.distributions import (
    SlotProbabilities,
    bernoulli_condition,
    bivalent_condition,
    enumerate_strings,
    exact_string_probability,
    from_adversarial_stake,
    sample_characteristic_string,
    sample_martingale_string,
    semi_synchronous_condition,
    verify_monotone,
)
from repro.core.margin import relative_margin


class TestSlotProbabilities:
    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            SlotProbabilities(0.5, 0.5, 0.5)

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            SlotProbabilities(-0.1, 0.6, 0.5)

    def test_epsilon(self):
        probs = SlotProbabilities(0.4, 0.3, 0.3)
        assert math.isclose(probs.epsilon, 0.4)

    def test_honest_mass(self):
        probs = SlotProbabilities(0.4, 0.3, 0.3)
        assert math.isclose(probs.p_honest, 0.7)

    def test_activity(self):
        probs = SlotProbabilities(0.1, 0.1, 0.1, 0.7)
        assert math.isclose(probs.activity, 0.3)


class TestBernoulliCondition:
    def test_definition_7_parameters(self):
        probs = bernoulli_condition(epsilon=0.2, p_unique=0.3)
        assert math.isclose(probs.p_adversarial, 0.4)
        assert math.isclose(probs.p_unique, 0.3)
        assert math.isclose(probs.p_multi, 0.3)

    def test_p_unique_cannot_exceed_honest_mass(self):
        with pytest.raises(ValueError):
            bernoulli_condition(epsilon=0.2, p_unique=0.7)

    def test_epsilon_range_enforced(self):
        with pytest.raises(ValueError):
            bernoulli_condition(epsilon=0.0, p_unique=0.1)
        with pytest.raises(ValueError):
            bernoulli_condition(epsilon=1.0, p_unique=0.1)

    def test_bivalent_condition_has_no_unique_slots(self):
        probs = bivalent_condition(0.3)
        assert probs.p_unique == 0.0
        assert math.isclose(probs.p_multi, (1 + 0.3) / 2)

    def test_from_adversarial_stake_matches_table1_parameterisation(self):
        probs = from_adversarial_stake(0.2, 0.8)
        assert math.isclose(probs.p_adversarial, 0.2)
        assert math.isclose(probs.p_unique, 0.64)
        assert math.isclose(probs.p_multi, 0.16)

    def test_semi_synchronous_condition(self):
        probs = semi_synchronous_condition(0.3, 0.1, 0.15)
        assert math.isclose(probs.p_empty, 0.7)
        assert math.isclose(probs.p_multi, 0.05)


class TestSampling:
    def test_sample_length_and_alphabet(self, rng):
        probs = bernoulli_condition(0.3, 0.2)
        word = sample_characteristic_string(probs, 500, rng)
        assert len(word) == 500
        assert set(word) <= set("hHA")

    def test_sample_frequencies_match(self, rng):
        probs = bernoulli_condition(0.3, 0.2)
        word = sample_characteristic_string(probs, 40_000, rng)
        assert abs(word.count("h") / len(word) - 0.2) < 0.01
        assert abs(word.count("A") / len(word) - 0.35) < 0.01

    def test_semi_synchronous_sampling_includes_empty(self, rng):
        probs = semi_synchronous_condition(0.3, 0.1, 0.1)
        word = sample_characteristic_string(probs, 2_000, rng)
        assert "." in word

    def test_exact_string_probability(self):
        probs = bernoulli_condition(0.5, 0.25)
        value = exact_string_probability(probs, "hA")
        assert math.isclose(value, 0.25 * 0.25)

    def test_exact_probabilities_sum_to_one(self):
        probs = bernoulli_condition(0.4, 0.3)
        total = sum(
            exact_string_probability(probs, w)
            for w in enumerate_strings("hHA", 4)
        )
        assert math.isclose(total, 1.0)


class TestMartingaleDominance:
    def test_martingale_sampler_is_less_adversarial(self, rng):
        """The damped sampler's A-frequency must not exceed the i.i.d. one."""
        probs = bernoulli_condition(0.2, 0.3)
        word = sample_martingale_string(probs, 40_000, rng, correlation=0.5)
        assert word.count("A") / len(word) <= probs.p_adversarial + 0.01

    def test_martingale_violation_rate_dominated(self, rng):
        """Monotone events are at most as likely under the damped law.

        The settlement-violation indicator is monotone (Theorem 1's
        argument); compare Monte-Carlo rates.
        """
        probs = bernoulli_condition(0.1, 0.2)
        slot, depth, trials = 5, 12, 4_000
        needed = slot + depth

        def rate(sampler):
            hits = 0
            for _ in range(trials):
                word = sampler()
                if relative_margin(word[:needed], slot - 1) >= 0:
                    hits += 1
            return hits / trials

        iid = rate(lambda: sample_characteristic_string(probs, needed, rng))
        damped = rate(
            lambda: sample_martingale_string(probs, needed, rng, 0.3)
        )
        assert damped <= iid + 0.03

    def test_violation_indicator_is_monotone(self):
        """Settlement violation is a monotone event in the Def. 6 order."""
        words = [
            "".join(w)
            for w in __import__("itertools").product("hHA", repeat=5)
        ]
        indicator = lambda w: relative_margin(w, 2) >= 0
        assert verify_monotone(indicator, words)
