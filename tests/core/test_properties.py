"""Property-based tests (hypothesis) on the core invariants.

These cover the load-bearing identities of the reproduction with random
generation rather than fixed fixtures: recurrence consistency, dominance
monotonicity, Catalan/UVP equivalences, and A* canonicality.
"""

from hypothesis import given, settings, strategies as st

from repro.core.adversary_star import build_canonical_fork
from repro.core.catalan import catalan_slots, catalan_slots_naive
from repro.core.margin import (
    margin_of_fork,
    margin_sequence,
    relative_margin,
)
from repro.core.reach import max_reach, reach_sequence, rho
from repro.core.uvp import has_uvp, has_uvp_by_margin

words = st.text(alphabet="hHA", min_size=0, max_size=40)
short_words = st.text(alphabet="hHA", min_size=1, max_size=14)
bivalent_words = st.text(alphabet="HA", min_size=1, max_size=40)


@given(words)
def test_reach_sequence_steps_are_pm_one(word):
    sequence = reach_sequence(word)
    assert sequence[0] == 0
    for before, after, symbol in zip(sequence, sequence[1:], word):
        if symbol == "A":
            assert after == before + 1
        else:
            assert after == max(before - 1, 0)


@given(words)
def test_reach_is_nonnegative(word):
    assert rho(word) >= 0


@given(words, st.data())
def test_margin_never_exceeds_reach(word, data):
    prefix_length = data.draw(st.integers(0, len(word)))
    assert relative_margin(word, prefix_length) <= rho(word)


@given(words, st.data())
def test_margin_changes_by_at_most_one_per_symbol(word, data):
    prefix_length = data.draw(st.integers(0, len(word)))
    sequence = margin_sequence(word, prefix_length)
    for before, after in zip(sequence, sequence[1:]):
        assert abs(after - before) <= 1


@given(words)
def test_margin_of_full_prefix_is_reach(word):
    assert relative_margin(word, len(word)) == rho(word)


@given(words)
def test_appending_adversarial_increments_both(word):
    assert rho(word + "A") == rho(word) + 1
    assert relative_margin(word + "A", 0) == relative_margin(word, 0) + 1


@given(words)
def test_catalan_fast_equals_naive(word):
    assert catalan_slots(word) == catalan_slots_naive(word)


@given(words)
def test_catalan_upgrade_invariance(word):
    """Replacing h by H preserves Catalan slots (both count as honest)."""
    assert catalan_slots(word) == catalan_slots(word.replace("h", "H"))


@given(words, st.data())
def test_uvp_characterisations_agree(word, data):
    if not word:
        return
    slot = data.draw(st.integers(1, len(word)))
    assert has_uvp(word, slot) == has_uvp_by_margin(word, slot)


@given(words)
def test_adversarial_suffix_destroys_trailing_catalan(word):
    """Appending enough A symbols removes every Catalan slot."""
    poisoned = word + "A" * (len(word) + 1)
    assert catalan_slots(poisoned) == []


@settings(max_examples=40, deadline=None)
@given(short_words, st.data())
def test_adversary_star_is_canonical(word, data):
    fork = build_canonical_fork(word)
    assert max_reach(fork) == rho(word)
    prefix_length = data.draw(st.integers(0, len(word)))
    assert margin_of_fork(fork, prefix_length) == relative_margin(
        word, prefix_length
    )


@settings(max_examples=40, deadline=None)
@given(short_words)
def test_adversary_star_output_is_closed_and_valid(word):
    fork = build_canonical_fork(word)
    fork.validate()
    assert fork.is_closed()


@given(bivalent_words)
def test_bivalent_margin_never_negative_without_unique_slots(word):
    """With no h symbols the margin recurrence never drops below 0 from 0.

    This is the quantitative face of "all existing analyses break down
    when p_h = 0": under adversarial tie-breaking the margin cannot be
    driven negative by H symbols alone once it is non-negative.
    """
    if relative_margin(word, 0) < 0:
        # can only happen via an h symbol; bivalent words exclude it
        raise AssertionError("bivalent margin went negative")


@given(words, st.data())
def test_settled_slots_grow_monotonically_with_depth(word, data):
    from repro.core.settlement import is_k_settled

    if not word:
        return
    slot = data.draw(st.integers(1, len(word)))
    depths = range(0, len(word) - slot + 2)
    flags = [is_k_settled(word, slot, d) for d in depths]
    for earlier, later in zip(flags, flags[1:]):
        if earlier:
            assert later


@given(st.text(alphabet="hHA.", min_size=0, max_size=40), st.integers(0, 6))
def test_reduction_length_and_alphabet(word, delta):
    from repro.delta.reduction import reduce_string

    reduced = reduce_string(word, delta)
    assert len(reduced) == sum(1 for c in word if c != ".")
    assert set(reduced) <= set("hHA")


@given(st.text(alphabet="hHA.", min_size=0, max_size=40), st.integers(0, 6))
def test_reduction_monotone_in_delta(word, delta):
    """Larger Δ yields a more adversarial reduced string (Def. 6 order)."""
    from repro.core.alphabet import string_leq
    from repro.delta.reduction import reduce_string

    smaller = reduce_string(word, delta)
    larger = reduce_string(word, delta + 1)
    assert string_leq(smaller, larger)
