"""The fork framework: axioms F1–F4, tines, viability (Definition 2)."""

import pytest

from repro.core.forks import (
    Fork,
    ForkAxiomViolation,
    build_fork,
    figure_1_fork,
    lowest_common_ancestor,
)


def linear_fork(word: str = "hhh") -> Fork:
    """0 → 1 → 2 → 3, the honest-only execution."""
    fork = Fork(word)
    parent = fork.root
    for slot in range(1, len(word) + 1):
        parent = fork.add_vertex(parent, slot)
    return fork


class TestConstruction:
    def test_trivial_fork(self):
        fork = Fork("hA")
        assert fork.root.label == 0
        assert fork.height == 0
        assert len(fork) == 1

    def test_add_vertex_depths(self):
        fork = linear_fork()
        assert fork.height == 3
        assert [v.depth for v in fork.vertices()] == [0, 1, 2, 3]

    def test_labels_must_increase_along_edges(self):
        fork = Fork("hh")
        v2 = fork.add_vertex(fork.root, 2)
        with pytest.raises(ForkAxiomViolation):
            fork.add_vertex(v2, 1)
        with pytest.raises(ForkAxiomViolation):
            fork.add_vertex(v2, 2)

    def test_label_range_enforced(self):
        fork = Fork("h")
        with pytest.raises(ForkAxiomViolation):
            fork.add_vertex(fork.root, 2)
        with pytest.raises(ForkAxiomViolation):
            fork.add_vertex(fork.root, 0)

    def test_empty_slot_cannot_carry_blocks(self):
        fork = Fork("h.h")
        with pytest.raises(ForkAxiomViolation):
            fork.add_vertex(fork.root, 2)

    def test_copy_is_deep(self):
        fork = linear_fork()
        clone = fork.copy()
        clone.add_vertex(clone.root, 1)  # second vertex labelled 1
        assert len(clone) == len(fork) + 1
        assert len(fork.vertices_with_label(1)) == 1


class TestValidation:
    def test_honest_only_linear_fork_is_valid(self):
        linear_fork().validate()

    def test_figure_1_fork_is_valid(self):
        figure_1_fork().validate()

    def test_f3_unique_honest_needs_exactly_one(self):
        fork = Fork("h")
        assert not fork.is_valid()  # zero vertices for slot 1
        fork.add_vertex(fork.root, 1)
        assert fork.is_valid()
        fork.add_vertex(fork.root, 1)
        assert not fork.is_valid()  # two vertices for an 'h' slot

    def test_f3_multiply_honest_needs_at_least_one(self):
        fork = Fork("H")
        assert not fork.is_valid()
        fork.add_vertex(fork.root, 1)
        assert fork.is_valid()
        fork.add_vertex(fork.root, 1)
        assert fork.is_valid()  # several vertices allowed for 'H'

    def test_f3_adversarial_any_number(self):
        fork = Fork("Ah")
        fork.add_vertex(fork.root, 2)
        assert fork.is_valid()  # zero adversarial vertices is fine
        fork.add_vertex(fork.root, 1)
        fork.add_vertex(fork.root, 1)
        assert fork.is_valid()  # several adversarial vertices too

    def test_f4_honest_depth_must_increase(self):
        fork = Fork("hh")
        fork.add_vertex(fork.root, 1)
        fork.add_vertex(fork.root, 2)  # same depth as slot 1's vertex
        with pytest.raises(ForkAxiomViolation):
            fork.validate()

    def test_f4_concurrent_honest_vertices_may_tie(self):
        fork = Fork("hH")
        v1 = fork.add_vertex(fork.root, 1)
        fork.add_vertex(v1, 2)
        fork.add_vertex(v1, 2)  # two label-2 vertices at equal depth
        fork.validate()

    def test_adversarial_vertices_not_constrained_by_f4(self):
        fork = Fork("hA")
        fork.add_vertex(fork.root, 1)
        fork.add_vertex(fork.root, 2)  # adversarial at depth 1, same as honest
        fork.validate()


class TestTines:
    def test_tine_length_and_label(self):
        fork = linear_fork()
        tine = fork.tine(fork.vertices()[-1])
        assert tine.length == 3
        assert tine.label == 3

    def test_common_prefix(self):
        fork = Fork("hAA")
        v1 = fork.add_vertex(fork.root, 1)
        a = fork.add_vertex(v1, 2)
        b = fork.add_vertex(v1, 3)
        assert lowest_common_ancestor(a, b) is v1
        assert fork.tine(a).common_prefix(fork.tine(b)) is v1

    def test_disjointness_relation(self):
        fork = Fork("hAA")
        v1 = fork.add_vertex(fork.root, 1)
        a = fork.add_vertex(v1, 2)
        b = fork.add_vertex(v1, 3)
        ta, tb = fork.tine(a), fork.tine(b)
        # diverge after slot 1: share edge into 1 but nothing later
        assert ta.is_disjoint_after(tb, prefix_length=1)
        assert not ta.is_disjoint_after(tb, prefix_length=0)

    def test_self_disjoint_only_within_prefix(self):
        fork = Fork("hA")
        v1 = fork.add_vertex(fork.root, 1)
        t = fork.tine(v1)
        assert t.is_disjoint_after(t, prefix_length=1)
        assert not t.is_disjoint_after(t, prefix_length=0)

    def test_root_tine_always_disjoint(self):
        fork = Fork("h")
        fork.add_vertex(fork.root, 1)
        root_tine = fork.tine(fork.root)
        assert root_tine.is_disjoint_after(root_tine, prefix_length=0)

    def test_strict_prefix(self):
        fork = linear_fork()
        vs = fork.vertices()
        assert fork.tine(vs[1]).is_strict_prefix_of(fork.tine(vs[3]))
        assert not fork.tine(vs[3]).is_strict_prefix_of(fork.tine(vs[1]))

    def test_last_honest_vertex(self):
        fork = Fork("hA")
        v1 = fork.add_vertex(fork.root, 1)
        v2 = fork.add_vertex(v1, 2)
        assert fork.tine(v2).last_honest_vertex() is v1


class TestViability:
    def test_honest_tines_are_viable(self):
        fork = linear_fork()
        last = fork.vertices()[-1]
        assert fork.is_viable_at_onset(last, 4)

    def test_short_adversarial_tine_not_viable(self):
        fork = Fork("hhA")
        v1 = fork.add_vertex(fork.root, 1)
        fork.add_vertex(v1, 2)
        stub = fork.add_vertex(fork.root, 3)  # adversarial, depth 1
        assert not fork.is_viable_at_onset(stub, 4)

    def test_equal_length_adversarial_tine_is_viable(self):
        fork = Fork("hA")
        fork.add_vertex(fork.root, 1)
        rival = fork.add_vertex(fork.root, 2)
        assert fork.is_viable_at_onset(rival, 3)

    def test_honest_depth_function_is_increasing(self):
        fork = figure_1_fork()
        honest_labels = sorted(
            {v.label for v in fork.honest_vertices() if v.label > 0}
        )
        depths = [fork.honest_depth(label) for label in honest_labels]
        assert depths == sorted(depths)
        assert len(set(depths)) == len(depths)


class TestFigure1:
    def test_three_maximum_length_tines(self):
        fork = figure_1_fork()
        assert len(fork.maximum_length_tines()) == 3

    def test_concurrent_honest_labels(self):
        fork = figure_1_fork()
        assert len(fork.vertices_with_label(6)) == 2
        assert len(fork.vertices_with_label(9)) == 2
        assert len(fork.vertices_with_label(4)) == 3

    def test_closedness(self):
        """The Figure 1 fork is *not* closed: one tine ends at the
        adversarial vertex labelled 8 (closedness is only required when
        maximising reach/margin, not of forks in general)."""
        assert not figure_1_fork().is_closed()

    def test_ascii_rendering_mentions_all_labels(self):
        art = figure_1_fork().to_ascii()
        for label in range(1, 10):
            assert str(label) in art


class TestPrefixes:
    def test_contains_as_prefix(self):
        small = Fork("h")
        small.add_vertex(small.root, 1)
        big = Fork("hA")
        v1 = big.add_vertex(big.root, 1)
        big.add_vertex(v1, 2)
        assert big.contains_as_prefix(small)
        assert not small.contains_as_prefix(big)

    def test_build_fork_helper(self):
        fork = build_fork("hAh", [(0, 1), (1, 2), (1, 3)])
        assert fork.height == 2
        assert len(fork.vertices_with_label(1)) == 1
        fork.validate()
