"""Catalan slots: definition, fast detection, structural facts (Def. 11)."""

from repro.core.catalan import (
    catalan_slots,
    catalan_slots_naive,
    consecutive_catalan_pairs,
    first_uniquely_honest_catalan_slot,
    has_catalan_in_window,
    is_catalan,
    is_left_catalan,
    is_right_catalan,
    left_catalan_slots,
    right_catalan_slots,
    uniquely_honest_catalan_slots,
)
from repro.core.alphabet import is_honest

from tests.conftest import all_strings, random_strings


class TestDefinitions:
    def test_single_honest_slot_is_catalan(self):
        assert is_catalan("h", 1)
        assert is_catalan("H", 1)

    def test_single_adversarial_slot_is_not(self):
        assert not is_catalan("A", 1)

    def test_left_catalan_example(self):
        # [1,2] of 'Ah' is a tie -> A-heavy -> slot 2 not left-Catalan.
        assert not is_left_catalan("Ah", 2)
        assert is_left_catalan("hh", 2)

    def test_right_catalan_example(self):
        assert not is_right_catalan("hA", 1)  # [1,2] tie
        assert is_right_catalan("hh", 1)

    def test_catalan_needs_both_sides(self):
        # slot 2 of 'hhA': left [1,2] heavy, right [2,3] tie -> not Catalan.
        assert is_left_catalan("hhA", 2)
        assert not is_right_catalan("hhA", 2)
        assert not is_catalan("hhA", 2)

    def test_multiply_honest_slots_count(self):
        """The key improvement over prior analyses: H slots are not wasted."""
        assert is_catalan("HHH", 2)
        assert catalan_slots("HHH") == [1, 2, 3]


class TestFastDetection:
    def test_fast_matches_naive_exhaustively(self):
        for word in all_strings("hHA", 8, min_length=1):
            assert catalan_slots(word) == catalan_slots_naive(word), word

    def test_fast_matches_naive_on_random_long_strings(self):
        for word in random_strings("hHA", 40, 20, 60, seed=11):
            assert catalan_slots(word) == catalan_slots_naive(word), word

    def test_left_right_decomposition(self):
        for word in random_strings("hHA", 40, 5, 40, seed=12):
            left = set(left_catalan_slots(word))
            right = set(right_catalan_slots(word))
            assert set(catalan_slots(word)) == (left & right), word

    def test_catalan_slots_are_honest(self):
        for word in random_strings("hHA", 30, 5, 40, seed=13):
            for slot in catalan_slots(word):
                assert is_honest(word[slot - 1])


class TestStructuralFacts:
    def test_neighbours_of_catalan_are_honest(self):
        """The slots adjacent to a Catalan slot must be honest (Section 3.2)."""
        for word in random_strings("hHA", 60, 5, 40, seed=14):
            for slot in catalan_slots(word):
                if slot > 1:
                    assert is_honest(word[slot - 2]), (word, slot)
                if slot < len(word):
                    assert is_honest(word[slot]), (word, slot)

    def test_all_honest_string_is_all_catalan(self):
        word = "hhHHh"
        assert catalan_slots(word) == [1, 2, 3, 4, 5]

    def test_majority_adversarial_has_no_catalan(self):
        assert catalan_slots("AAhAA") == []

    def test_replacing_h_with_catalan_survives(self):
        """Catalan-ness only counts honest vs adversarial, not multiplicity."""
        for word in random_strings("hA", 30, 5, 30, seed=15):
            upgraded = word.replace("h", "H")
            assert catalan_slots(word) == catalan_slots(upgraded)


class TestHelpers:
    def test_uniquely_honest_catalan_slots(self):
        word = "hHh"
        assert uniquely_honest_catalan_slots(word) == [1, 3]

    def test_first_uniquely_honest_catalan(self):
        # slot 2 of 'Ahh' is not left-Catalan ([1,2] is a tie); slot 3 is.
        assert first_uniquely_honest_catalan_slot("Ahh") == 3
        assert first_uniquely_honest_catalan_slot("AAA") is None
        assert first_uniquely_honest_catalan_slot("HHH") is None

    def test_consecutive_pairs(self):
        assert consecutive_catalan_pairs("HHH") == [1, 2]
        assert consecutive_catalan_pairs("HAH") == []

    def test_window_query(self):
        word = "AAhhhhhAA"
        slots = catalan_slots(word)
        assert slots == [5]
        assert has_catalan_in_window(word, 3, 5)
        assert not has_catalan_in_window(word, 6, 9)


class TestWalkCharacterisation:
    def test_new_minimum_and_no_return(self):
        """Catalan ⇔ strict new walk minimum + the walk never returns."""
        from repro.core.alphabet import prefix_sums

        for word in random_strings("hHA", 50, 5, 40, seed=16):
            sums = prefix_sums(word)
            for slot in range(1, len(word) + 1):
                if not is_honest(word[slot - 1]):
                    continue
                new_min = all(sums[slot] < sums[j] for j in range(slot))
                no_return = all(
                    sums[r] < sums[slot - 1]
                    for r in range(slot, len(word) + 1)
                )
                assert is_catalan(word, slot) == (new_min and no_return)
