"""The explicit settlement game of Section 2.2 (arena + strategies)."""

import random

import pytest

from repro.core.game import (
    CanonicalForker,
    LongestChainSycophant,
    RandomForker,
    SettlementGameArena,
    play_settlement_game,
)
from repro.core.margin import margin_of_fork, relative_margin
from repro.core.reach import max_reach, rho

from tests.conftest import random_strings


class TestArenaRules:
    def test_honest_only_game_builds_a_chain(self):
        won, fork = play_settlement_game(
            "hhhh", LongestChainSycophant(), 1, 2
        )
        assert not won
        assert fork.height == 4
        fork.validate()

    def test_unique_honest_slot_must_get_one_vertex(self):
        class Cheater(LongestChainSycophant):
            def honest_slot(self, arena, slot, multiply):
                return [arena.longest_vertices()[0]] * 2

        arena = SettlementGameArena("h", Cheater())
        with pytest.raises(ValueError):
            arena.play()

    def test_honest_vertices_must_extend_longest_tines(self):
        class Laggard(LongestChainSycophant):
            def honest_slot(self, arena, slot, multiply):
                return [arena.fork.root]

        arena = SettlementGameArena("hh", Laggard())
        with pytest.raises(ValueError):
            arena.play()

    def test_augmentation_cannot_use_future_labels(self):
        class TimeTraveller(LongestChainSycophant):
            def augment(self, arena, slot):
                if slot == 1 and len(arena.word) > 1:
                    return [(arena.fork.root, 2)]
                return []

        arena = SettlementGameArena("hA", TimeTraveller())
        with pytest.raises(ValueError):
            arena.play()

    def test_game_too_short_for_parameters(self):
        arena = SettlementGameArena("hh", LongestChainSycophant())
        arena.play()
        with pytest.raises(ValueError):
            arena.adversary_wins(2, 5)


class TestStrategies:
    def test_random_forker_produces_valid_forks(self, rng):
        for word in random_strings("hHA", 20, 4, 14, seed=91):
            arena = SettlementGameArena(word, RandomForker(rng))
            fork = arena.play()
            fork.validate()

    def test_sycophant_never_wins_on_honest_strings(self):
        for word in random_strings("hH", 10, 6, 12, seed=92):
            won, _fork = play_settlement_game(
                word, LongestChainSycophant(), 2, 3
            )
            assert not won

    def test_canonical_forker_reproduces_a_star(self):
        """The game-embedded A* attains ρ(w) and μ_x(y) in the arena fork."""
        for word in random_strings("hHA", 15, 4, 12, seed=93):
            arena = SettlementGameArena(word, CanonicalForker())
            fork = arena.play()
            fork.validate()
            assert max_reach(fork) == rho(word), word
            for prefix_length in range(len(word) + 1):
                assert margin_of_fork(fork, prefix_length) == relative_margin(
                    word, prefix_length
                ), (word, prefix_length)

    def test_canonical_forker_wins_exactly_when_margin_nonnegative(self):
        for word in random_strings("hHA", 20, 6, 12, seed=94):
            target, depth = 2, 3
            if len(word) < target + depth:
                continue
            won, _fork = play_settlement_game(
                word, CanonicalForker(), target, depth
            )
            expected = relative_margin(word, target - 1) >= 0
            assert won == expected, word

    def test_random_forker_never_beats_canonical(self, rng):
        """Monte-Carlo: the random attacker's win rate ≤ the optimum's."""
        words = random_strings("hHA", 40, 8, 8, seed=95)
        target, depth = 2, 4
        random_wins = canonical_wins = 0
        for word in words:
            won_r, _ = play_settlement_game(
                word, RandomForker(rng), target, depth
            )
            won_c, _ = play_settlement_game(
                word, CanonicalForker(), target, depth
            )
            random_wins += won_r
            canonical_wins += won_c
            # pointwise: if random wins the canonical must win too
            assert not won_r or won_c, word
        assert canonical_wins >= random_wins
