"""Biased walks and the X_∞ barrier law (Section 5, Eq. (9))."""

import math
import random

import pytest

from repro.core.walks import (
    ascent_time,
    bias_probabilities,
    descent_time,
    expected_descent_time,
    geometric_tail_exponent,
    reflected_walk,
    ruin_probability,
    sample_descent_time,
    sample_reflected_walk_height,
    stationary_reach_pmf,
    stationary_reach_ratio,
    stationary_reach_tail,
    walk_path,
)
from repro.core.reach import reach_sequence


class TestBias:
    def test_bias_probabilities(self):
        p, q = bias_probabilities(0.2)
        assert math.isclose(p, 0.4) and math.isclose(q, 0.6)
        assert math.isclose(q - p, 0.2)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            bias_probabilities(0.0)
        with pytest.raises(ValueError):
            bias_probabilities(1.0)

    def test_ruin_probability(self):
        assert math.isclose(ruin_probability(0.2), 0.4 / 0.6)


class TestStationaryLaw:
    def test_ratio(self):
        assert math.isclose(stationary_reach_ratio(0.2), 0.8 / 1.2)

    def test_pmf_is_geometric(self):
        pmf = stationary_reach_pmf(0.3, 10)
        beta = stationary_reach_ratio(0.3)
        for k in range(10):
            assert math.isclose(pmf[k + 1] / pmf[k], beta)

    def test_pmf_plus_tail_sums_to_one(self):
        pmf = stationary_reach_pmf(0.25, 40)
        tail = stationary_reach_tail(0.25, 41)
        assert math.isclose(sum(pmf) + tail, 1.0)

    def test_reflected_walk_converges_to_stationary_law(self, rng):
        """Empirical X_t distribution approaches X_∞ (Eq. (9))."""
        epsilon = 0.4
        beta = stationary_reach_ratio(epsilon)
        samples = [
            sample_reflected_walk_height(epsilon, 200, rng)
            for _ in range(4000)
        ]
        for k in (0, 1, 2):
            expected = (1 - beta) * beta**k
            observed = sum(1 for s in samples if s == k) / len(samples)
            assert abs(observed - expected) < 0.03

    def test_stationary_law_dominates_finite_time(self, rng):
        """X_m ⪯ X_∞ ([4, Lemma 6.1]): finite-time tails are smaller."""
        epsilon = 0.3
        samples = [
            sample_reflected_walk_height(epsilon, 30, rng) for _ in range(4000)
        ]
        for threshold in (1, 2, 4):
            empirical_tail = sum(1 for s in samples if s >= threshold) / len(
                samples
            )
            assert empirical_tail <= stationary_reach_tail(
                epsilon, threshold
            ) + 0.02


class TestPathHelpers:
    def test_walk_path(self):
        assert walk_path("AhH.") == [0, 1, 0, -1, -1]

    def test_reflected_walk_is_nonnegative(self):
        heights = reflected_walk("AAhhhhA")
        assert all(h >= 0 for h in heights)

    def test_reflected_walk_equals_reach_recurrence(self):
        """X_t of the walk equals ρ(prefix) — the Theorem 5 connection."""
        for word in ("hAhA", "AAAh", "HhAAHh", "hhhhAA"):
            assert reflected_walk(word) == reach_sequence(word)

    def test_descent_time(self):
        assert descent_time("hAA") == 1
        assert descent_time("AhhA") == 3
        assert descent_time("AA") is None

    def test_ascent_time(self):
        assert ascent_time("Ah") == 1
        assert ascent_time("hh") is None


class TestSampledStoppingTimes:
    def test_descent_time_mean(self, rng):
        """E[first descent] = 1/ε."""
        epsilon = 0.5
        samples = [sample_descent_time(epsilon, rng) for _ in range(4000)]
        assert all(s is not None for s in samples)
        mean = sum(samples) / len(samples)
        assert abs(mean - expected_descent_time(epsilon)) < 0.15

    def test_geometric_tail_exponent_positive(self):
        assert geometric_tail_exponent(0.3) > 0
        assert geometric_tail_exponent(0.5) > geometric_tail_exponent(0.1)
