"""Gap, reserve, reach and the ρ recurrence (Definitions 13, 14; Theorem 5)."""

from repro.core.enumeration import enumerate_forks
from repro.core.forks import Fork
from repro.core.reach import (
    gap,
    max_reach,
    max_reach_vertices,
    reach,
    reach_sequence,
    reserve,
    rho,
    zero_reach_vertices,
)

from tests.conftest import all_strings, random_strings


def two_tine_fork() -> Fork:
    """w = hAA: honest 0→1 and adversarial 0→2."""
    fork = Fork("hAA")
    fork.add_vertex(fork.root, 1)
    fork.add_vertex(fork.root, 2)
    return fork


class TestDefinitions:
    def test_reserve_counts_later_adversarial_indices(self):
        fork = two_tine_fork()
        v1, v2 = fork.vertices()[1:]
        assert reserve(fork, fork.root) == 2
        assert reserve(fork, v1) == 2
        assert reserve(fork, v2) == 1

    def test_gap_against_height(self):
        fork = two_tine_fork()
        v1 = fork.vertices()[1]
        assert gap(fork, fork.root) == 1
        assert gap(fork, v1) == 0

    def test_reach_is_reserve_minus_gap(self):
        fork = two_tine_fork()
        for vertex in fork.vertices():
            assert reach(fork, vertex) == reserve(fork, vertex) - gap(
                fork, vertex
            )

    def test_max_reach_never_negative_for_closed_forks(self):
        for word in all_strings("hHA", 5, min_length=1):
            for fork in enumerate_forks(word, 2, 2):
                assert max_reach(fork) >= 0, word

    def test_zero_and_max_reach_vertex_sets(self):
        fork = two_tine_fork()
        zeroes = zero_reach_vertices(fork)
        tops = max_reach_vertices(fork)
        assert all(reach(fork, v) == 0 for v in zeroes)
        best = max_reach(fork)
        assert all(reach(fork, v) == best for v in tops)


class TestRecurrence:
    def test_base_cases(self):
        assert rho("") == 0
        assert rho("A") == 1
        assert rho("h") == 0
        assert rho("H") == 0

    def test_reflection_at_zero(self):
        assert rho("hh") == 0
        assert rho("Ahh") == 0
        assert rho("AAhh") == 0

    def test_adversarial_run(self):
        assert rho("AAAA") == 4
        assert rho("AAAAh") == 3

    def test_sequence_prefix_consistency(self):
        word = "AhHAAhA"
        sequence = reach_sequence(word)
        for i in range(len(word) + 1):
            assert sequence[i] == rho(word[:i])

    def test_recurrence_matches_enumeration(self):
        """ρ(w) from Theorem 5 equals the brute-force fork maximum."""
        for word in all_strings("hHA", 4, min_length=1):
            forks = enumerate_forks(word, 2, 2)
            assert max(max_reach(f) for f in forks) == rho(word), word

    def test_recurrence_matches_enumeration_sampled_length5(self):
        for word in random_strings("hHA", 12, 5, 5, seed=21):
            forks = enumerate_forks(word, 2, 2)
            assert max(max_reach(f) for f in forks) == rho(word), word

    def test_monotone_in_partial_order(self):
        """More adversarial strings have at least the reach (Def. 6)."""
        from repro.core.alphabet import dominating_strings

        for word in all_strings("hHA", 4, min_length=1):
            base = rho(word)
            for upper in dominating_strings(word):
                assert rho(upper) >= base
