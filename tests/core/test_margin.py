"""Relative margin: the Theorem 5 recurrence versus the fork definition."""

import pytest

from repro.core.adversary_star import build_canonical_fork
from repro.core.enumeration import enumerate_forks
from repro.core.margin import (
    ever_settlement_violated,
    joint_trajectory,
    margin,
    margin_of_fork,
    margin_sequence,
    margin_step,
    relative_margin,
    settlement_violated,
)
from repro.core.reach import reach_sequence, rho

from tests.conftest import all_strings, random_strings


class TestRecurrenceBasics:
    def test_empty_suffix_margin_is_prefix_reach(self):
        for word in ("", "A", "hA", "AAh"):
            assert relative_margin(word, len(word)) == rho(word)

    def test_adversarial_symbol_increments(self):
        assert margin("A") == 1
        assert margin("AA") == 2

    def test_unique_honest_from_zero_goes_negative(self):
        assert margin("h") == -1

    def test_multiply_honest_from_zero_stays_zero(self):
        """The crux of the multi-leader analysis: H holds the margin at 0."""
        assert margin("H") == 0
        assert margin("HHHH") == 0

    def test_positive_reach_shields_margin_zero(self):
        # rho('A') = 1 > mu = 0 after 'Ah': margin stays 0 on honest symbol
        assert margin("Ah") == 0
        assert margin("Ahh") == -1

    def test_margin_can_recover_after_negative(self):
        assert margin("hA") == 0
        assert margin("hAA") == 1

    def test_prefix_length_validation(self):
        with pytest.raises(ValueError):
            relative_margin("hA", 3)

    def test_sequence_shape(self):
        word = "hAhH"
        sequence = margin_sequence(word, 1)
        assert len(sequence) == len(word) - 1 + 1
        assert sequence[0] == rho("h")

    def test_joint_trajectory_consistency(self):
        word = "AhHAAhhA"
        for prefix_length in range(len(word) + 1):
            trajectory = joint_trajectory(word, prefix_length)
            reaches = reach_sequence(word)[prefix_length:]
            margins = margin_sequence(word, prefix_length)
            assert [r for r, _ in trajectory] == reaches
            assert [m for _, m in trajectory] == margins

    def test_margin_step_matches_sequence(self):
        word = "AhHA"
        r, m = rho(""), 0
        for i, symbol in enumerate(word):
            r, m = margin_step(r, m, symbol)
            assert m == margin(word[: i + 1])

    def test_margin_at_most_reach(self):
        for word in random_strings("hHA", 50, 1, 30, seed=31):
            for prefix_length in range(len(word) + 1):
                assert relative_margin(word, prefix_length) <= rho(word)


class TestAgainstForkDefinition:
    def test_exhaustive_small_strings(self):
        """μ_x(y) recurrence == max over enumerated closed forks (|w| ≤ 4)."""
        for word in all_strings("hHA", 4, min_length=1):
            forks = enumerate_forks(word, 2, 2)
            for prefix_length in range(len(word) + 1):
                brute = max(
                    margin_of_fork(f, prefix_length) for f in forks
                )
                assert brute == relative_margin(word, prefix_length), (
                    word,
                    prefix_length,
                )

    def test_sampled_length5(self):
        for word in random_strings("hHA", 10, 5, 5, seed=32):
            forks = enumerate_forks(word, 2, 2)
            for prefix_length in range(len(word) + 1):
                brute = max(
                    margin_of_fork(f, prefix_length) for f in forks
                )
                assert brute == relative_margin(word, prefix_length)

    def test_canonical_fork_attains_recurrence(self):
        """A* witnesses the recurrence exactly (the other direction)."""
        for word in random_strings("hHA", 25, 6, 20, seed=33):
            fork = build_canonical_fork(word)
            for prefix_length in range(len(word) + 1):
                assert margin_of_fork(fork, prefix_length) == relative_margin(
                    word, prefix_length
                )


class TestPaperExamples:
    def test_figure_2_string_admits_balanced_fork(self):
        # w = hAhAhA is balanced (Figure 2) so mu_eps >= 0
        assert margin("hAhAhA") >= 0

    def test_figure_3_string_admits_x_balanced_fork(self):
        # w = hhhAhA with x = hh (Figure 3)
        assert relative_margin("hhhAhA", 2) >= 0

    def test_all_honest_string_settles_immediately(self):
        word = "hhhhh"
        for slot in range(1, 6):
            assert not settlement_violated(word, slot)


class TestSettlementIndicators:
    def test_settlement_violated_matches_margin_sign(self):
        for word in random_strings("hHA", 40, 2, 25, seed=34):
            for slot in range(1, len(word) + 1):
                expected = relative_margin(word, slot - 1) >= 0
                assert settlement_violated(word, slot) == expected

    def test_ever_violated_is_weaker_than_final(self):
        for word in random_strings("hHA", 40, 2, 25, seed=35):
            for slot in range(1, len(word) + 1):
                if settlement_violated(word, slot):
                    assert ever_settlement_violated(word, slot)

    def test_ever_violated_catches_transient(self):
        # slot 1 of 'hAhh': margin -1, 0, 0, -1 — transient violation only
        # (the third symbol is shielded by ρ = 1 > 0).
        assert not settlement_violated("hAhh", 1)
        assert ever_settlement_violated("hAhh", 1)


class TestDominance:
    def test_margin_monotone_in_partial_order(self):
        from repro.core.alphabet import dominating_strings

        for word in all_strings("hHA", 4, min_length=1):
            for prefix_length in range(len(word) + 1):
                base = relative_margin(word, prefix_length)
                for upper in dominating_strings(word):
                    assert (
                        relative_margin(upper, prefix_length) >= base
                    ), (word, upper)
