"""Characteristic strings: validation, ordering, counting (Definitions 1, 6)."""

import pytest

from repro.core import alphabet
from repro.core.alphabet import (
    ADVERSARIAL,
    EMPTY,
    HONEST_MULTI,
    HONEST_UNIQUE,
    BIVALENT_ALPHABET,
    SEMI_SYNCHRONOUS_ALPHABET,
    CharacteristicString,
    InvalidCharacteristicString,
    count_symbols,
    dominating_strings,
    is_a_heavy,
    is_hh_heavy,
    prefix_sums,
    string_leq,
    symbol_leq,
    validate,
    walk_increments,
)

from tests.conftest import all_strings


class TestValidation:
    def test_valid_synchronous_string(self):
        assert validate("hHAAhH") == "hHAAhH"

    def test_empty_string_is_valid(self):
        assert validate("") == ""

    def test_empty_slot_rejected_in_synchronous_alphabet(self):
        with pytest.raises(InvalidCharacteristicString):
            validate("h.A")

    def test_empty_slot_accepted_in_semi_synchronous_alphabet(self):
        assert validate("h.A", SEMI_SYNCHRONOUS_ALPHABET) == "h.A"

    def test_bivalent_alphabet_rejects_unique_honest(self):
        with pytest.raises(InvalidCharacteristicString):
            validate("hH", BIVALENT_ALPHABET)

    def test_arbitrary_symbols_rejected(self):
        with pytest.raises(InvalidCharacteristicString):
            validate("hxA")


class TestSymbolPredicates:
    def test_honest_symbols(self):
        assert alphabet.is_honest(HONEST_UNIQUE)
        assert alphabet.is_honest(HONEST_MULTI)
        assert not alphabet.is_honest(ADVERSARIAL)
        assert not alphabet.is_honest(EMPTY)

    def test_adversarial_symbol(self):
        assert alphabet.is_adversarial(ADVERSARIAL)
        assert not alphabet.is_adversarial(HONEST_UNIQUE)

    def test_count_symbols(self):
        counts = count_symbols("hHA.h")
        assert counts == {"h": 2, "H": 1, "A": 1, ".": 1}

    def test_honest_and_adversarial_counts(self):
        assert alphabet.honest_count("hHAAH") == 3
        assert alphabet.adversarial_count("hHAAH") == 2


class TestHeaviness:
    def test_hh_heavy_needs_strict_majority(self):
        assert is_hh_heavy("hHA")
        assert not is_hh_heavy("hA")  # tie is A-heavy
        assert is_a_heavy("hA")

    def test_empty_interval_is_a_heavy(self):
        assert is_a_heavy("")

    def test_empty_slots_count_for_neither(self):
        assert is_hh_heavy("h.")
        assert is_a_heavy("A.")


class TestPartialOrder:
    def test_symbol_order_chain(self):
        assert symbol_leq(HONEST_UNIQUE, HONEST_MULTI)
        assert symbol_leq(HONEST_MULTI, ADVERSARIAL)
        assert symbol_leq(HONEST_UNIQUE, ADVERSARIAL)
        assert not symbol_leq(ADVERSARIAL, HONEST_UNIQUE)

    def test_string_order_coordinatewise(self):
        assert string_leq("hh", "HA")
        assert not string_leq("HA", "hh")
        assert not string_leq("hA", "Ah")  # incomparable

    def test_string_order_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            string_leq("h", "hh")

    def test_reflexive(self):
        for word in all_strings("hHA", 3):
            assert string_leq(word, word)

    def test_dominating_strings_contains_all_upper_bounds(self):
        dominated = set(dominating_strings("hH"))
        assert dominated == {"hH", "hA", "HH", "HA", "AH", "AA"}

    def test_dominating_strings_of_adversarial_is_singleton(self):
        assert set(dominating_strings("AA")) == {"AA"}

    def test_dominance_transitive_on_length_two(self):
        words = list(all_strings("hHA", 2, min_length=2))
        for a in words:
            for b in words:
                for c in words:
                    if string_leq(a, b) and string_leq(b, c):
                        assert string_leq(a, c)


class TestWalk:
    def test_walk_increments(self):
        assert walk_increments("hHA.") == [-1, -1, 1, 0]

    def test_prefix_sums_start_at_zero(self):
        assert prefix_sums("AhH") == [0, 1, 0, -1]

    def test_prefix_sums_length(self):
        word = "hAhA"
        assert len(prefix_sums(word)) == len(word) + 1


class TestCharacteristicString:
    def test_round_trip(self):
        cs = CharacteristicString("hHA")
        assert str(cs) == "hHA"
        assert len(cs) == 3
        assert list(cs) == ["h", "H", "A"]

    def test_slot_is_one_based(self):
        cs = CharacteristicString("hHA")
        assert cs.slot(1) == "h"
        assert cs.slot(3) == "A"
        with pytest.raises(IndexError):
            cs.slot(0)
        with pytest.raises(IndexError):
            cs.slot(4)

    def test_interval_closed_one_based(self):
        cs = CharacteristicString("hHAhH")
        assert cs.interval(2, 4) == "HAh"
        with pytest.raises(IndexError):
            cs.interval(0, 2)

    def test_equality_and_hash(self):
        assert CharacteristicString("hA") == CharacteristicString("hA")
        assert hash(CharacteristicString("hA")) == hash(CharacteristicString("hA"))

    def test_order_operator(self):
        assert CharacteristicString("hh") <= CharacteristicString("HA")

    def test_validation_on_construction(self):
        with pytest.raises(InvalidCharacteristicString):
            CharacteristicString("h?A")
