"""Slot settlement and the settlement game (Definition 3, Section 2.2)."""

import pytest

from repro.core.distributions import bernoulli_condition, sample_characteristic_string
from repro.core.settlement import (
    SettlementGame,
    catalan_settlement_summary,
    is_k_settled,
    longest_settlement_free_window,
    settled_by_uvp,
    settled_by_uvp_consistent,
    settlement_time,
    settlement_violation_slots,
)

from tests.conftest import random_strings


class TestIsKSettled:
    def test_all_honest_settles_everything(self):
        word = "hhhhh"
        for slot in range(1, 6):
            for depth in range(0, 5):
                assert is_k_settled(word, slot, depth)

    def test_balanced_example_is_unsettled(self):
        # hAhAhA admits a balanced fork: slot 1 unsettled even at the end.
        assert not is_k_settled("hAhAhA", 1, 5)

    def test_deep_settlement_after_honest_run(self):
        word = "hA" + "h" * 10
        assert is_k_settled(word, 1, 5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            is_k_settled("hA", 0, 1)
        with pytest.raises(ValueError):
            is_k_settled("hA", 1, -1)

    def test_violation_slots_listing(self):
        word = "hAhAhA"
        violations = settlement_violation_slots(word, 2)
        assert violations
        for slot in violations:
            assert not is_k_settled(word, slot, 2)

    def test_settled_monotone_in_depth(self):
        """If s is k-settled it is k'-settled for every k' ≥ k."""
        for word in random_strings("hHA", 40, 5, 30, seed=61):
            for slot in range(1, len(word) + 1):
                settled_at = [
                    is_k_settled(word, slot, depth)
                    for depth in range(0, len(word) - slot + 2)
                ]
                for earlier, later in zip(settled_at, settled_at[1:]):
                    if earlier:
                        assert later


class TestUvpSufficiency:
    def test_uvp_certificate_implies_settlement(self):
        for word in random_strings("hHA", 60, 5, 30, seed=62):
            for slot in range(1, len(word) + 1):
                for depth in (1, 3, 5):
                    if settled_by_uvp(word, slot, depth - 1):
                        assert is_k_settled(word, slot, depth), (
                            word,
                            slot,
                            depth,
                        )

    def test_consistent_certificate_is_weaker_requirement(self):
        for word in random_strings("HA", 40, 10, 30, seed=63):
            for slot in range(1, len(word) + 1):
                if settled_by_uvp(word, slot, 5):
                    assert settled_by_uvp_consistent(word, slot, 5)


class TestSettlementTime:
    def test_immediate_settlement(self):
        assert settlement_time("hhh", 1) == 1

    def test_unsettled_returns_none(self):
        assert settlement_time("hAhAhA", 1) is None

    def test_settlement_time_is_tight(self):
        for word in random_strings("hHA", 40, 5, 25, seed=64):
            for slot in range(1, len(word) + 1):
                k = settlement_time(word, slot)
                max_observable = len(word) - slot + 1
                if k is None:
                    # unsettled at the deepest depth this word can witness
                    assert not is_k_settled(word, slot, max_observable)
                else:
                    assert is_k_settled(word, slot, k)
                    if k > 1:
                        assert not is_k_settled(word, slot, k - 1)


class TestSettlementGame:
    def test_game_win_matches_margin(self):
        game = SettlementGame(target_slot=3, depth=4)
        assert game.adversary_wins("hAhAhAA")  # slot 3 margin stays >= 0?
        word = "hh" + "h" * 10
        game2 = SettlementGame(target_slot=1, depth=4)
        assert not game2.adversary_wins(word)

    def test_game_requires_long_enough_string(self):
        game = SettlementGame(target_slot=5, depth=10)
        with pytest.raises(ValueError):
            game.adversary_wins("hhh")

    def test_win_probability_estimator(self, rng):
        probs = bernoulli_condition(0.9, 0.95)  # overwhelmingly honest
        game = SettlementGame(target_slot=2, depth=8)
        rate = game.win_probability(
            lambda: sample_characteristic_string(probs, 12, rng), trials=300
        )
        assert rate < 0.1


class TestSummaries:
    def test_longest_uvp_free_window(self):
        word = "AAAA"
        assert longest_settlement_free_window(word) == 4

    def test_summary_fields(self):
        summary = catalan_settlement_summary("hAhhA")
        assert summary["length"] == 5
        assert summary["honest_slots"] == 3
        assert summary["adversarial_slots"] == 2
        assert summary["catalan_slots"] >= summary["uvp_slots"]
