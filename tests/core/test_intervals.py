"""Heavy intervals and the interval oracle (Section 3.1)."""

import pytest

from repro.core.alphabet import is_hh_heavy
from repro.core.intervals import (
    IntervalOracle,
    all_a_heavy_intervals,
    maximal_a_heavy_interval,
)

from tests.conftest import all_strings


class TestIntervalOracle:
    def test_walk_values(self):
        oracle = IntervalOracle("hAAh")
        assert [oracle.walk(t) for t in range(5)] == [0, -1, 0, 1, 0]

    def test_single_slot_intervals(self):
        oracle = IntervalOracle("hA")
        assert oracle.is_hh_heavy(1, 1)
        assert oracle.is_a_heavy(2, 2)

    def test_counts(self):
        oracle = IntervalOracle("hHA.h")
        assert oracle.honest_count(1, 5) == 3
        assert oracle.adversarial_count(1, 5) == 1
        assert oracle.empty_count(1, 5) == 1

    def test_oracle_matches_direct_counting(self):
        for word in all_strings("hHA", 5, min_length=1):
            oracle = IntervalOracle(word)
            for start in range(1, len(word) + 1):
                for stop in range(start, len(word) + 1):
                    expected = is_hh_heavy(word[start - 1 : stop])
                    assert oracle.is_hh_heavy(start, stop) == expected

    def test_out_of_range_rejected(self):
        oracle = IntervalOracle("hA")
        with pytest.raises(IndexError):
            oracle.is_hh_heavy(0, 1)
        with pytest.raises(IndexError):
            oracle.is_hh_heavy(1, 3)
        with pytest.raises(IndexError):
            oracle.is_hh_heavy(2, 1)

    def test_empty_slots_are_neutral(self):
        oracle = IntervalOracle("h..A")
        # one honest vs one adversarial: tie, A-heavy
        assert oracle.is_a_heavy(1, 4)
        assert oracle.is_hh_heavy(1, 3)


class TestAHeavyIntervals:
    def test_all_a_heavy_intervals_simple(self):
        heavy = all_a_heavy_intervals("hA")
        assert (2, 2) in heavy
        assert (1, 2) in heavy  # tie counts as A-heavy
        assert (1, 1) not in heavy

    def test_maximal_interval_contains_slot(self):
        interval = maximal_a_heavy_interval("hAAh", 2)
        assert interval is not None
        start, stop = interval
        assert start <= 2 <= stop

    def test_maximal_interval_none_when_slot_shielded(self):
        # 'hhh' has no A-heavy interval at all
        assert maximal_a_heavy_interval("hhh", 2) is None

    def test_maximal_interval_is_maximal(self):
        word = "hAAhA"
        slot = 3
        interval = maximal_a_heavy_interval(word, slot)
        assert interval is not None
        width = interval[1] - interval[0]
        for start, stop in all_a_heavy_intervals(word):
            if start <= slot <= stop:
                assert stop - start <= width
