"""The optimal online adversary A* (Figure 4, Theorem 6)."""

import itertools

from repro.core.adversary_star import AdversaryStar, build_canonical_fork
from repro.core.margin import margin_of_fork, relative_margin
from repro.core.reach import max_reach, rho

from tests.conftest import random_strings


class TestCanonicality:
    def test_exhaustive_short_strings(self):
        """μ_x(F) = μ_x(y) for every prefix of every |w| ≤ 6 (Theorem 6)."""
        for length in range(0, 7):
            for symbols in itertools.product("hHA", repeat=length):
                word = "".join(symbols)
                fork = build_canonical_fork(word)
                assert max_reach(fork) == rho(word), word
                for prefix_length in range(length + 1):
                    assert margin_of_fork(
                        fork, prefix_length
                    ) == relative_margin(word, prefix_length), (
                        word,
                        prefix_length,
                    )

    def test_random_longer_strings(self):
        for word in random_strings("hHA", 30, 10, 24, seed=41):
            fork = build_canonical_fork(word)
            assert max_reach(fork) == rho(word), word
            for prefix_length in range(len(word) + 1):
                assert margin_of_fork(fork, prefix_length) == relative_margin(
                    word, prefix_length
                ), (word, prefix_length)


class TestForkValidity:
    def test_output_is_valid_and_closed(self):
        for word in random_strings("hHA", 40, 1, 30, seed=42):
            fork = build_canonical_fork(word)
            fork.validate()
            assert fork.is_closed(), word

    def test_word_tracking(self):
        adversary = AdversaryStar()
        adversary.advance("h")
        adversary.advance("A")
        assert adversary.word == "hA"

    def test_online_growth_preserves_prefix_forks(self):
        """The fork after n symbols embeds in the fork after n + 1."""
        word = "hAHhAAHh"
        adversary = AdversaryStar()
        previous = None
        for symbol in word:
            adversary.advance(symbol)
            current = adversary.fork.copy()
            if previous is not None:
                assert current.contains_as_prefix(previous)
            previous = current


class TestStrategyShape:
    def test_adversarial_symbols_add_no_vertices(self):
        adversary = AdversaryStar()
        adversary.advance("h")
        before = len(adversary.fork)
        adversary.advance("A")
        assert len(adversary.fork) == before

    def test_multiply_honest_at_zero_reach_adds_two(self):
        """b = H with ρ(F) = 0 performs two conservative extensions."""
        adversary = AdversaryStar()
        adversary.advance("H")
        vertices = adversary.fork.vertices_with_label(1)
        assert len(vertices) == 2
        # both extensions are siblings of maximal depth
        assert {v.depth for v in vertices} == {1}

    def test_multiply_honest_at_positive_reach_adds_one(self):
        adversary = AdversaryStar()
        adversary.advance("A")
        adversary.advance("A")
        adversary.advance("H")
        assert len(adversary.fork.vertices_with_label(3)) == 1

    def test_uniquely_honest_always_adds_one(self):
        adversary = AdversaryStar()
        for symbol in "hhh":
            adversary.advance(symbol)
        for label in (1, 2, 3):
            assert len(adversary.fork.vertices_with_label(label)) == 1

    def test_extension_log_records_slots(self):
        adversary = AdversaryStar()
        for symbol in "hAH":
            adversary.advance(symbol)
        slots = [slot for slot, _uids in adversary.extension_log]
        assert slots == [1, 3]

    def test_conservative_extension_height_growth(self):
        """Each honest step raises the height by exactly one (Def. 15)."""
        adversary = AdversaryStar()
        height = 0
        for symbol in "hHAhAAHh":
            before = adversary.fork.height
            adversary.advance(symbol)
            after = adversary.fork.height
            if symbol == "A":
                assert after == before
            else:
                assert after == before + 1

    def test_zero_reach_empty_case(self):
        """After a long adversarial run no zero-reach tine exists; A* must
        still produce a canonical fork (extends a maximum-reach tine)."""
        word = "hAAAh"
        fork = build_canonical_fork(word)
        for prefix_length in range(len(word) + 1):
            assert margin_of_fork(fork, prefix_length) == relative_margin(
                word, prefix_length
            )
