"""Result cache: round trips are bit-equal, any key change is a miss."""

import json

import pytest

from repro.core.distributions import bernoulli_condition
from repro.engine import (
    ExperimentRunner,
    NoUniqueCatalanInWindow,
    ResultCache,
    delta_settlement_violation,
    get_scenario,
    settlement_violation,
)
from repro.engine.cache import cache_from_env, estimator_token


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def make_runner(cache, **overrides):
    overrides.setdefault("depth", 15)
    scenario = get_scenario("iid-settlement", **overrides)
    return ExperimentRunner(scenario, chunk_size=512, cache=cache)


class TestRoundTrip:
    def test_cached_result_is_bit_equal(self, cache):
        runner = make_runner(cache)
        fresh = runner.run(4_000, seed=17)
        assert (cache.hits, cache.misses, cache.stores) == (0, 1, 1)
        warm = runner.run(4_000, seed=17)
        assert warm == fresh  # dataclass equality: value, se, trials
        assert cache.hits == 1

    def test_warm_run_does_no_sampling(self, cache, monkeypatch):
        runner = make_runner(cache)
        fresh = runner.run(2_000, seed=1)

        import repro.engine.runner as runner_module

        def exploding(*args):  # pragma: no cover - must not run
            raise AssertionError("chunk executed on a warm cache")

        monkeypatch.setattr(runner_module, "run_chunk", exploding)
        assert runner.run(2_000, seed=1) == fresh

    def test_entry_survives_process_boundary(self, cache):
        """Entries are plain JSON: a fresh ResultCache over the same
        directory (a new process, in practice) serves the same bits."""
        runner = make_runner(cache)
        fresh = runner.run(3_000, seed=23)
        reopened = ResultCache(cache.directory)
        runner_again = ExperimentRunner(
            runner.scenario, chunk_size=512, cache=reopened
        )
        assert runner_again.run(3_000, seed=23) == fresh
        assert reopened.hits == 1 and reopened.stores == 0


class TestStats:
    """The stats() satellite: counters the orchestrators' footers print."""

    def test_fresh_cache_has_no_rate(self, cache):
        assert cache.stats() == {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "lookups": 0,
            "hit_rate": None,
            "chunk_hits": 0,
            "chunk_misses": 0,
            "chunk_stores": 0,
            "chunk_lookups": 0,
            "chunk_hit_rate": None,
        }

    def test_traffic_is_counted(self, cache):
        runner = make_runner(cache)
        runner.run(1_000, seed=5)  # miss + store
        runner.run(1_000, seed=5)  # hit
        runner.run(1_000, seed=6)  # miss + store
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["stores"] == 2
        assert stats["lookups"] == 3
        assert stats["hit_rate"] == pytest.approx(1 / 3)

    def test_contains_does_not_count(self, cache):
        runner = make_runner(cache)
        estimate = runner.run(1_000, seed=5)
        key = cache.key(
            runner.scenario, runner.estimator, 5, 1_000, runner.chunk_size
        )
        assert cache.contains(key)
        assert cache.stats()["lookups"] == 1  # only the run's miss
        assert cache.get(key) == estimate
        assert cache.stats()["hits"] == 1


class TestInvalidation:
    """Any key component changes ⇒ miss."""

    def test_changed_seed_misses(self, cache):
        runner = make_runner(cache)
        runner.run(2_000, seed=5)
        runner.run(2_000, seed=6)
        assert cache.stores == 2 and cache.hits == 0

    def test_changed_trials_misses(self, cache):
        runner = make_runner(cache)
        runner.run(2_000, seed=5)
        runner.run(2_001, seed=5)
        assert cache.stores == 2 and cache.hits == 0

    def test_changed_chunk_size_misses(self, cache):
        make_runner(cache).run(2_000, seed=5)
        scenario = get_scenario("iid-settlement", depth=15)
        ExperimentRunner(scenario, chunk_size=256, cache=cache).run(
            2_000, seed=5
        )
        assert cache.stores == 2 and cache.hits == 0

    def test_changed_scenario_field_misses(self, cache):
        make_runner(cache).run(2_000, seed=5)
        make_runner(cache, depth=16).run(2_000, seed=5)
        assert cache.stores == 2 and cache.hits == 0

    def test_changed_probabilities_miss(self, cache):
        make_runner(cache).run(2_000, seed=5)
        make_runner(
            cache, probabilities=bernoulli_condition(0.4, 0.3)
        ).run(2_000, seed=5)
        assert cache.stores == 2 and cache.hits == 0

    def test_changed_estimator_misses(self, cache):
        scenario = get_scenario("iid-settlement", depth=15)
        key_a = cache.key(scenario, settlement_violation, 1, 100, 512)
        key_b = cache.key(scenario, delta_settlement_violation, 1, 100, 512)
        assert cache.digest(key_a) != cache.digest(key_b)


class TestEstimatorTokens:
    def test_function_token_is_qualified_name(self):
        token = estimator_token(settlement_violation)
        assert token == "repro.engine.runner.settlement_violation"

    def test_window_estimator_token_includes_parameters(self):
        near = estimator_token(NoUniqueCatalanInWindow(10, 20))
        far = estimator_token(NoUniqueCatalanInWindow(10, 21))
        assert near != far
        assert "window_length=20" in near

    def test_lambda_rejected(self):
        with pytest.raises(ValueError, match="no stable identity"):
            estimator_token(lambda scenario, batch: None)

    def test_closure_rejected(self):
        def factory(start):
            def estimator(scenario, batch):
                return start

            return estimator

        with pytest.raises(ValueError, match="no stable identity"):
            estimator_token(factory(3))


class TestRobustness:
    @pytest.mark.parametrize(
        "field,bad",
        [
            ("value", "0.25"),  # hand-edited string loads, crashes later
            ("value", float("nan")),
            ("standard_error", "tiny"),
            ("standard_error", -0.1),
            ("standard_error", True),
            ("trials", 100.0),  # float trials breaks exact-int arithmetic
            ("trials", "100"),
            ("trials", 0),
            ("trials", True),
        ],
    )
    def test_type_invalid_entry_is_a_miss(self, cache, field, bad):
        """The hardening satellite: wrong numeric *types* (not just
        malformed JSON) must count as corrupt-entry misses instead of
        loading and crashing downstream."""
        runner = make_runner(cache)
        fresh = runner.run(2_000, seed=9)
        key = cache.key(runner.scenario, runner.estimator, 9, 2_000, 512)
        entry = json.loads(cache.path(key).read_text())
        entry["estimate"][field] = bad
        cache.path(key).write_text(json.dumps(entry))
        assert not cache.contains(key)
        assert cache.get(key) is None
        assert runner.run(2_000, seed=9) == fresh  # heals by recompute

    def test_corrupt_entry_is_a_miss_and_heals(self, cache):
        runner = make_runner(cache)
        fresh = runner.run(2_000, seed=9)
        key = cache.key(runner.scenario, runner.estimator, 9, 2_000, 512)
        cache.path(key).write_text("{not json")
        assert not cache.contains(key)
        healed = runner.run(2_000, seed=9)
        assert healed == fresh
        assert json.loads(cache.path(key).read_text())["estimate"][
            "trials"
        ] == 2_000

    def test_entry_file_is_self_describing(self, cache):
        runner = make_runner(cache)
        runner.run(2_000, seed=9)
        key = cache.key(runner.scenario, runner.estimator, 9, 2_000, 512)
        entry = json.loads(cache.path(key).read_text())
        assert entry["key"]["seed"] == 9
        assert entry["key"]["scenario"]["depth"] == 15
        assert entry["key"]["estimator"].endswith("settlement_violation")

    def test_cache_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
        assert cache_from_env() is None
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "c"))
        env_cache = cache_from_env()
        assert env_cache is not None
        assert env_cache.directory == tmp_path / "c"
        assert cache_from_env(default=tmp_path / "d").directory == tmp_path / "c"
