"""The chunk ledger and adaptive stopping: the PR 5 contract.

Pins the two halves of the revised reproducibility contract:

* **Prefix property** — extending ``trials`` over a warm ledger reuses
  every previously computed full chunk bit-identically and samples only
  the new chunks plus the ragged remainder (which is computed, never
  ledgered); a ``chunk_size`` change is a different chunk stream and
  reuses nothing; estimate-level entries written without any ledger
  still hit.
* **Adaptive determinism** — ``run_until`` meets its standard-error
  target with a realized trial count that is a deterministic function
  of ``(seed, stopping rule)``: bit-identical across 1/2/4 workers,
  ledger-cacheable, and capped by ``max_trials``.
"""

import numpy as np
import pytest

import repro.engine.parallel as parallel_module
import repro.engine.runner as runner_module
from repro.engine import (
    ExperimentRunner,
    ResultCache,
    get_scenario,
    run_chunk,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def make_runner(cache=None, chunk_size=512, **overrides):
    overrides.setdefault("depth", 15)
    scenario = get_scenario("iid-settlement", **overrides)
    return ExperimentRunner(scenario, chunk_size=chunk_size, cache=cache)


@pytest.fixture
def counting_run_chunk(monkeypatch):
    """Count (and record the sizes of) every chunk actually sampled.

    Patched where the serial backend resolves it
    (``repro.engine.parallel`` imports ``run_chunk`` by name).
    """
    calls = []

    def counted(scenario, estimator, size, child):
        calls.append(size)
        return run_chunk(scenario, estimator, size, child)

    monkeypatch.setattr(parallel_module, "run_chunk", counted)
    return calls


class TestPrefixProperty:
    def test_extension_is_bit_identical_to_fresh_run(self, cache):
        """10k -> 50k over a warm ledger == an uncached 50k run."""
        warm = make_runner(cache)
        warm.run(10_000, seed=3)
        extended = warm.run(50_000, seed=3)
        fresh = make_runner().run(50_000, seed=3)
        assert extended == fresh

    def test_extension_samples_only_new_chunks(self, cache, counting_run_chunk):
        runner = make_runner(cache)  # chunk_size 512
        runner.run(2_048, seed=11)  # 4 full chunks, no remainder
        del counting_run_chunk[:]
        runner.run(4_096, seed=11)  # 8 full chunks
        assert counting_run_chunk == [512] * 4  # chunks 4..7 only
        report = runner.last_report
        assert report.reused_trials == 2_048
        assert report.sampled_trials == 2_048
        assert report.reused_chunks == 4 and report.sampled_chunks == 4

    def test_ragged_remainder_is_never_ledgered(self, cache, counting_run_chunk):
        runner = make_runner(cache)
        runner.run(1_000, seed=21)  # 1 full chunk + ragged 488
        del counting_run_chunk[:]
        extended = runner.run(1_500, seed=21)  # 2 full + ragged 476
        # chunk 0 reused; chunk 1 and the new remainder sampled — the
        # old 488-trial remainder is not reusable (different phase
        # widths consume the child generator differently).
        assert counting_run_chunk == [512, 476]
        assert extended == make_runner().run(1_500, seed=21)

    def test_chunk_size_change_reuses_nothing(self, cache, counting_run_chunk):
        make_runner(cache, chunk_size=512).run(2_048, seed=5)
        del counting_run_chunk[:]
        make_runner(cache, chunk_size=256).run(2_048, seed=5)
        assert counting_run_chunk == [256] * 8  # a different chunk stream

    def test_ledger_survives_process_boundary(self, cache, counting_run_chunk):
        """Ledgers are plain JSON: a fresh ResultCache over the same
        directory serves the same chunks to a fresh runner."""
        first = make_runner(cache)
        first.run(2_048, seed=9)
        reopened = ResultCache(cache.directory)
        runner = ExperimentRunner(
            first.scenario, chunk_size=512, cache=reopened
        )
        del counting_run_chunk[:]
        extended = runner.run(4_096, seed=9)
        assert counting_run_chunk == [512] * 4
        assert reopened.chunk_hits == 4 and reopened.chunk_stores == 4
        assert extended == make_runner().run(4_096, seed=9)

    def test_estimate_level_entries_hit_without_any_ledger(
        self, cache, monkeypatch
    ):
        """Compatibility read path: a cache holding only whole-run
        estimate entries (as written before the ledger existed) still
        serves identical-trials reruns with zero sampling."""
        runner = make_runner(cache)
        fresh = runner.run(2_000, seed=7)
        for ledger in cache.directory.glob("*.ledger.json"):
            ledger.unlink()

        def exploding(*args):  # pragma: no cover - must not run
            raise AssertionError("sampled despite an estimate-level hit")

        monkeypatch.setattr(runner_module, "run_chunk", exploding)
        monkeypatch.setattr(parallel_module, "run_chunk", exploding)
        assert runner.run(2_000, seed=7) == fresh
        assert runner.last_report.from_cache

    def test_corrupt_ledger_is_an_all_miss_and_heals(self, cache):
        runner = make_runner(cache)
        first = runner.run(2_048, seed=13)
        (ledger_file,) = cache.directory.glob("*.ledger.json")
        ledger_file.write_text('{"chunks": {"0": "many"}}')
        extended = runner.run(4_096, seed=13)
        assert extended == make_runner().run(4_096, seed=13)
        assert runner.run(2_048, seed=13) == first  # estimate-level hit

    def test_different_seed_different_ledger(self, cache, counting_run_chunk):
        runner = make_runner(cache)
        runner.run(2_048, seed=1)
        del counting_run_chunk[:]
        runner.run(2_048, seed=2)
        assert counting_run_chunk == [512] * 4


class TestRunUntil:
    def test_meets_target_se(self):
        runner = make_runner(chunk_size=512)
        estimate = runner.run_until(5, target_se=0.01, max_trials=100_000)
        assert estimate.standard_error <= 0.01
        assert estimate.trials < 100_000  # stopped well before the cap
        assert runner.last_report.trials == estimate.trials

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_across_worker_counts(self, workers):
        serial = make_runner(chunk_size=512).run_until(
            42, target_se=0.005, max_trials=50_000
        )
        scenario = get_scenario("iid-settlement", depth=15)
        runner = ExperimentRunner(scenario, chunk_size=512, workers=workers)
        assert (
            runner.run_until(42, target_se=0.005, max_trials=50_000)
            == serial
        )

    def test_realized_trials_deterministic(self):
        first = make_runner(chunk_size=256).run_until(
            8, target_se=0.004, max_trials=30_000
        )
        second = make_runner(chunk_size=256).run_until(
            8, target_se=0.004, max_trials=30_000
        )
        assert first == second

    def test_unreachable_target_stops_at_max_trials(self):
        runner = make_runner(chunk_size=512)
        estimate = runner.run_until(5, target_se=1e-9, max_trials=3_000)
        assert estimate.trials == 3_000
        # At the cap the run is bit-identical to the fixed-budget path.
        assert estimate == make_runner(chunk_size=512).run(3_000, seed=5)

    def test_rel_se_gives_rare_cells_more_trials(self):
        easy = make_runner(chunk_size=512, depth=5)
        hard = make_runner(chunk_size=512, depth=40)
        easy_estimate = easy.run_until(4, rel_se=0.1, max_trials=200_000)
        hard_estimate = hard.run_until(4, rel_se=0.1, max_trials=200_000)
        assert easy_estimate.value > hard_estimate.value  # rarer event
        assert hard_estimate.trials > easy_estimate.trials

    def test_warm_adaptive_run_samples_nothing(
        self, cache, counting_run_chunk
    ):
        runner = make_runner(cache, chunk_size=512)
        first = runner.run_until(6, target_se=0.01, max_trials=32_768)
        del counting_run_chunk[:]
        again = make_runner(cache, chunk_size=512)
        assert (
            again.run_until(6, target_se=0.01, max_trials=32_768) == first
        )
        assert counting_run_chunk == []
        assert again.last_report.from_cache

    def test_adaptive_chunks_reusable_by_fixed_runs(
        self, cache, counting_run_chunk
    ):
        runner = make_runner(cache, chunk_size=512)
        estimate = runner.run_until(6, target_se=0.01, max_trials=32_768)
        del counting_run_chunk[:]
        fixed = make_runner(cache, chunk_size=512)
        assert fixed.run(estimate.trials, seed=6) == estimate
        assert counting_run_chunk == []  # estimate-level hit

    def test_ragged_max_trials_cap(self):
        """A cap that is not a chunk multiple still lands exactly on it."""
        runner = make_runner(chunk_size=512)
        estimate = runner.run_until(3, target_se=1e-9, max_trials=1_300)
        assert estimate.trials == 1_300
        assert estimate == make_runner(chunk_size=512).run(1_300, seed=3)

    def test_cap_smaller_than_a_chunk(self):
        runner = make_runner(chunk_size=4_096)
        estimate = runner.run_until(3, target_se=1e-9, max_trials=100)
        assert estimate.trials == 100
        assert estimate == make_runner(chunk_size=4_096).run(100, seed=3)

    def test_validation(self):
        runner = make_runner()
        with pytest.raises(ValueError, match="target_se and/or rel_se"):
            runner.run_until(1, max_trials=100)
        with pytest.raises(ValueError, match="target_se must be positive"):
            runner.run_until(1, target_se=0.0, max_trials=100)
        with pytest.raises(ValueError, match="rel_se must be positive"):
            runner.run_until(1, rel_se=-0.1, max_trials=100)
        with pytest.raises(ValueError, match="max_trials"):
            runner.run_until(1, target_se=0.1, max_trials=0)
        with pytest.raises(ValueError, match="initial_chunks"):
            runner.run_until(
                1, target_se=0.1, max_trials=100, initial_chunks=0
            )
        with pytest.raises(ValueError, match="integer seed"):
            runner.run_until(
                np.random.default_rng(1), target_se=0.1, max_trials=100
            )
