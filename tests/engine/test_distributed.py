"""Distributed backend: wire protocol, failover, and bit-identity.

The acceptance point of the multi-host layer: the same grid estimated on
the serial, process, and localhost two-worker distributed backends must
produce *identical* rows (the chunk seed tree makes the backend a pure
wall-clock knob), a worker killed mid-run must only cost requeued chunks
(never a changed result), and the framing helpers must refuse corrupt
streams loudly.
"""

import os
import re
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.engine import (
    ArrayBackend,
    DistributedBackend,
    ExperimentRunner,
    ProcessBackend,
    ProtocolRunner,
    RemoteTaskError,
    SerialBackend,
    get_grid,
    get_scenario,
    run_grid,
)
from repro.engine.distributed import (
    ProtocolError,
    chunk_message,
    parse_hosts,
    recv_message,
    send_message,
)
from repro.worker import handle_request, serve


def _spawn_worker():
    """A real worker subprocess announcing its ephemeral port."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    src = os.path.abspath(src)
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.worker", "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = process.stdout.readline()
    match = re.match(r"listening on ([\d.]+):(\d+)", line)
    assert match, f"worker did not announce its port: {line!r}"
    return process, (match.group(1), int(match.group(2)))


@pytest.fixture()
def workers():
    """Two in-process worker servers; shut down after the test."""
    servers = [serve(), serve()]
    yield servers
    for server in servers:
        server.shutdown()
        server.server_close()


def _backend(servers, **kwargs):
    return DistributedBackend(
        [server.address for server in servers], timeout=30.0, **kwargs
    )


class TestWireProtocol:
    def test_frame_round_trip(self):
        left, right = socket.socketpair()
        payload = {"op": "chunk", "matrix": np.arange(12).reshape(3, 4)}
        send_message(left, payload)
        received = recv_message(right)
        assert received["op"] == "chunk"
        assert np.array_equal(received["matrix"], payload["matrix"])
        left.close()
        assert recv_message(right) is None  # clean EOF at a boundary
        right.close()

    def test_oversize_frame_refused_before_allocation(self):
        left, right = socket.socketpair()
        left.sendall((1 << 40).to_bytes(8, "big"))
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_message(right)
        left.close()
        right.close()

    def test_truncated_frame_is_a_protocol_error(self):
        left, right = socket.socketpair()
        left.sendall((100).to_bytes(8, "big") + b"short")
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_message(right)
        right.close()

    def test_parse_hosts(self):
        assert parse_hosts("a:1, b:2") == [("a", 1), ("b", 2)]
        assert parse_hosts(":9000") == [("127.0.0.1", 9000)]
        for bad in ("", "no-port", "host:", "host:abc"):
            with pytest.raises(ValueError):
                parse_hosts(bad)

    def test_chunk_message_reconstructs_the_spawned_seed(self):
        parent = np.random.SeedSequence(42)
        child = parent.spawn(5)[3]
        message = chunk_message(
            get_scenario("iid-settlement"), len, 128, child
        )
        rebuilt = np.random.SeedSequence(
            message["entropy"], spawn_key=tuple(message["spawn_key"])
        )
        assert (
            rebuilt.generate_state(8).tolist()
            == child.generate_state(8).tolist()
        )

    def test_unknown_op_is_reported_not_raised(self):
        reply = handle_request({"op": "frobnicate"})
        assert reply["ok"] is False
        assert "frobnicate" in reply["error"]


class TestBitIdentity:
    """Serial ≡ process ≡ distributed, estimate for estimate."""

    def test_runner_identical_across_all_backends(self, workers):
        runner = ExperimentRunner(
            get_scenario("iid-settlement", depth=20), chunk_size=1024
        )
        serial = runner.run(10_000, seed=42, backend=SerialBackend())
        with ProcessBackend(2) as pool:
            process = runner.run(10_000, seed=42, backend=pool)
        with _backend(workers) as remote:
            distributed = runner.run(10_000, seed=42, backend=remote)
        assert serial == process == distributed

    def test_grid_identical_across_all_backends(self, workers):
        grid = get_grid("stake")
        serial = run_grid(grid, trials=4096)
        with ProcessBackend(2) as pool:
            process = run_grid(grid, trials=4096, backend=pool)
        with _backend(workers) as remote:
            distributed = run_grid(grid, trials=4096, backend=remote)
        assert serial == process == distributed

    def test_generic_tasks_round_trip(self, workers):
        with _backend(workers) as remote:
            futures = [remote.submit_task(divmod, n, 3) for n in range(7)]
            assert [f.result() for f in futures] == [
                divmod(n, 3) for n in range(7)
            ]

    def test_remote_errors_surface_without_retry(self, workers):
        with _backend(workers) as remote:
            future = remote.submit_task(int, "not a number")
            with pytest.raises(RemoteTaskError, match="ValueError"):
                future.result()

    def test_ping_counts_reachable_hosts(self, workers):
        with _backend(workers) as remote:
            assert remote.ping() == 2


class TestFailover:
    def _spawn_worker(self):
        return _spawn_worker()

    def test_worker_killed_mid_run_requeues_onto_survivor(self, caplog):
        scenario = get_scenario("iid-settlement", depth=20)
        runner = ExperimentRunner(scenario, chunk_size=512)
        serial = runner.run(10_240, seed=7, backend=SerialBackend())

        victim, victim_address = self._spawn_worker()
        survivor, survivor_address = self._spawn_worker()
        try:
            backend = DistributedBackend(
                [victim_address, survivor_address], timeout=30.0
            )
            with backend, caplog.at_level(
                "WARNING", logger="repro.engine.distributed"
            ):
                pending = runner.submit(10_240, seed=7, backend=backend)
                victim.kill()  # hard kill: in-flight chunks requeue
                distributed = pending.result()
            assert distributed == serial
            # The requeue names the host (and, once a stats frame has
            # arrived, the worker id behind it) that dropped the chunk.
            victim_key = f"{victim_address[0]}:{victim_address[1]}"
            requeues = [
                record.getMessage()
                for record in caplog.records
                if "requeueing" in record.getMessage()
            ]
            assert any(victim_key in message for message in requeues)
        finally:
            for process in (victim, survivor):
                process.kill()
                process.wait(timeout=10)

    def test_stats_frames_attribute_chunks_to_workers(self, workers):
        scenario = get_scenario("iid-settlement", depth=15)
        runner = ExperimentRunner(scenario, chunk_size=512)
        with _backend(workers) as remote:
            runner.run(4_096, seed=11, backend=remote)
            stats = dict(remote.worker_stats)
        served = 0
        for server in workers:
            key = f"{server.address[0]}:{server.address[1]}"
            frame = stats[key]
            assert frame["worker"] == server.worker_id
            assert frame["uptime"] > 0
            served += frame["served"]["chunk"]
        assert served == 8  # 4096 trials / 512 chunk, across both hosts

    def test_all_workers_lost_fails_loudly(self):
        process, address = self._spawn_worker()
        process.kill()
        process.wait(timeout=10)
        backend = DistributedBackend(
            [address], timeout=5.0, reconnect_attempts=2, backoff_base=0.01
        )
        runner = ExperimentRunner(
            get_scenario("iid-settlement", depth=10), chunk_size=512
        )
        with pytest.raises(ConnectionError):
            runner.run(1_024, seed=1, backend=backend)
        backend.close()

    def test_graceful_shutdown_on_sigterm(self):
        process, _address = self._spawn_worker()
        process.terminate()
        assert process.wait(timeout=10) == 0
        assert "worker shut down" in process.stdout.read()


class TestProtocolWanConformance:
    """ISSUE 7 satellite 3: the continuous-time protocol workload obeys
    the same backend contract as analytical chunks — serial ≡ process ≡
    array ≡ distributed on a ``protocol_wan`` grid point, and a worker
    hard-killed mid-run never changes a protocol estimate."""

    #: One non-degenerate point of the registered grid (relay topology
    #: plus live jitter), filtered with the full grid's seeds so the
    #: rows agree with a full run.
    POINT = {
        "topology": ("ring",),
        "latency": (0.25,),
        "jitter_scale": (0.5,),
    }

    def test_wan_point_identical_across_all_backends(self, workers):
        grid = get_grid("protocol_wan")
        serial = run_grid(grid, trials=8, only=self.POINT)
        with ProcessBackend(2) as pool:
            process = run_grid(grid, trials=8, only=self.POINT, backend=pool)
        array = run_grid(
            grid, trials=8, only=self.POINT, backend=ArrayBackend()
        )
        with _backend(workers) as remote:
            distributed = run_grid(
                grid, trials=8, only=self.POINT, backend=remote
            )
        assert serial == process == array == distributed
        assert serial[0]["trials"] == 8

    def test_worker_killed_mid_protocol_run_requeues_onto_survivor(self):
        scenario = get_scenario(
            "protocol-wan", total_slots=30, target_slot=5, depth=4
        )
        runner = ProtocolRunner(scenario, chunk_size=4)
        serial = runner.run(16, seed=77, backend=SerialBackend())

        victim, victim_address = _spawn_worker()
        survivor, survivor_address = _spawn_worker()
        try:
            backend = DistributedBackend(
                [victim_address, survivor_address], timeout=60.0
            )
            with backend:
                pending = runner.submit(16, seed=77, backend=backend)
                victim.kill()  # in-flight simulation chunks must requeue
                distributed = pending.result()
            assert distributed == serial
        finally:
            for process in (victim, survivor):
                process.kill()
                process.wait(timeout=10)
