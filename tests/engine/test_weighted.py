"""The weighted-accumulator contract: the PR 8 refactor's guarantees.

Three pinned properties:

* **Degenerate bit-identity** — an estimator returning 0/1 *weights*
  (floats) produces the very same ``Estimate`` objects as the boolean
  hit-count path, across seeds, chunk sizes, and all four backends:
  ``estimate_from_moments`` delegates degenerate triples wholesale to
  ``estimate_from_hits``, so PR 7 results are reproduced bit for bit.
* **Ledger migration** — v1 ledgers (bare integer hit counts) are read
  as degenerate triples and reused without resampling; the next write
  upgrades the file to the v2 triple schema in place; corrupt v2
  triples degrade to an all-miss and heal.
* **Weighted standard errors** — non-degenerate accumulators estimate
  ``se`` from the second moment, with the all-equal-weights guard that
  keeps ``run_until`` from terminating on a spuriously zero ``se``.
"""

import json
import math

import numpy as np
import pytest

import repro.engine.parallel as parallel_module
from repro.engine import (
    ChunkAccumulator,
    ExperimentRunner,
    ProcessBackend,
    ResultCache,
    SerialBackend,
    accumulate_weights,
    as_accumulator,
    estimate_from_hits,
    estimate_from_moments,
    get_scenario,
    run_chunk,
    settlement_violation,
)


def settlement_violation_float(scenario, batch):
    """The default estimator with its booleans cast to 0.0/1.0 weights."""
    return settlement_violation(scenario, batch).astype(np.float64)


def constant_half_weight(scenario, batch):
    """Every trial weighs exactly 0.5: zero sample variance, value 0.5."""
    return np.full(batch.symbols.shape[0], 0.5)


class TestAccumulatorAlgebra:
    def test_builtin_sum_works(self):
        parts = [ChunkAccumulator(1.5, 2.25, 4), ChunkAccumulator(0.5, 0.25, 4)]
        total = sum(parts)
        assert total == ChunkAccumulator(2.0, 2.5, 8)
        assert sum([], ChunkAccumulator.zero()) == ChunkAccumulator.zero()

    def test_from_hits_is_degenerate(self):
        accumulator = ChunkAccumulator.from_hits(3, 10)
        assert accumulator.degenerate
        assert accumulator.as_triple() == (3.0, 3.0, 10)

    def test_fractional_moments_are_not_degenerate(self):
        assert not ChunkAccumulator(2.5, 2.5, 10).degenerate
        assert not ChunkAccumulator(3.0, 2.0, 10).degenerate

    def test_from_hits_validates(self):
        with pytest.raises(ValueError):
            ChunkAccumulator.from_hits(-1, 10)
        with pytest.raises(ValueError):
            ChunkAccumulator.from_hits(11, 10)

    def test_as_accumulator_normalizes_every_wire_shape(self):
        reference = ChunkAccumulator(2.0, 2.0, 8)
        assert as_accumulator(reference, 8) is reference
        assert as_accumulator((2.0, 2.0, 8), 8) == reference
        assert as_accumulator([2.0, 2.0, 8], 8) == reference
        # v1 wire/ledger form: a bare hit count.
        assert as_accumulator(2, 8) == reference

    def test_as_accumulator_rejects_junk(self):
        with pytest.raises(TypeError):
            as_accumulator("2", 8)
        with pytest.raises(TypeError):
            as_accumulator(True, 8)

    def test_accumulate_weights_bool_is_exact_hits(self):
        weights = np.array([True, False, True, True])
        assert accumulate_weights(weights, 4) == ChunkAccumulator.from_hits(
            3, 4
        )

    def test_accumulate_weights_validates(self):
        with pytest.raises(ValueError, match="one weight per trial"):
            accumulate_weights(np.ones(3), 4)
        with pytest.raises(ValueError):
            accumulate_weights(np.array([1.0, -0.5]), 2)
        with pytest.raises(ValueError):
            accumulate_weights(np.array([1.0, np.inf]), 2)


class TestDegenerateBitIdentity:
    """Weight-1 runs reproduce the hit-count path bit for bit."""

    @pytest.mark.parametrize("hits,trials", [(0, 64), (64, 64), (17, 64), (1, 7)])
    def test_moments_delegate_to_hits(self, hits, trials):
        accumulator = ChunkAccumulator.from_hits(hits, trials)
        assert estimate_from_moments(accumulator) == estimate_from_hits(
            hits, trials
        )

    @pytest.mark.parametrize("seed", [0, 7, 41])
    @pytest.mark.parametrize("chunk_size", [256, 1024])
    def test_float_estimator_matches_boolean(self, seed, chunk_size):
        scenario = get_scenario("iid-settlement", depth=15)
        boolean = ExperimentRunner(scenario, chunk_size=chunk_size)
        weighted = ExperimentRunner(
            scenario,
            estimator=settlement_violation_float,
            chunk_size=chunk_size,
        )
        assert weighted.run(3_000, seed=seed) == boolean.run(3_000, seed=seed)

    @pytest.mark.parametrize(
        "backend_name", ["serial", "process", "array", "distributed"]
    )
    def test_bit_identical_on_every_backend(self, backend_name):
        from repro.engine import ArrayBackend, DistributedBackend

        scenario = get_scenario("iid-settlement", depth=15)
        reference = ExperimentRunner(scenario, chunk_size=512).run(
            2_048, seed=12
        )
        weighted = ExperimentRunner(
            scenario, estimator=settlement_violation_float, chunk_size=512
        )
        server = None
        if backend_name == "serial":
            backend = SerialBackend()
        elif backend_name == "process":
            backend = ProcessBackend(2)
        elif backend_name == "array":
            backend = ArrayBackend()
        else:
            from repro.worker import serve

            server = serve()
            backend = DistributedBackend([server.address], timeout=30.0)
        try:
            assert weighted.run(2_048, seed=12, backend=backend) == reference
        finally:
            backend.close()
            if server is not None:
                server.shutdown()
                server.server_close()

    def test_run_chunk_returns_degenerate_accumulator(self):
        scenario = get_scenario("iid-settlement", depth=15)
        child = np.random.SeedSequence(3, spawn_key=(0,))
        boolean = run_chunk(scenario, settlement_violation, 512, child)
        weighted = run_chunk(scenario, settlement_violation_float, 512, child)
        assert isinstance(boolean, ChunkAccumulator)
        assert boolean.degenerate
        assert weighted == boolean


class TestWeightedStandardErrors:
    def test_second_moment_standard_error(self):
        # Two distinct weights: p-hat = 1.25, variance = (4+1)/2 - 1.25^2.
        accumulator = accumulate_weights(np.array([2.0, 0.5]), 2)
        estimate = estimate_from_moments(accumulator)
        assert estimate.value == pytest.approx(1.25)
        expected = math.sqrt((2.125 - 1.25**2) / 2)
        assert estimate.standard_error == pytest.approx(expected)

    def test_equal_weights_floor_keeps_se_positive(self):
        """All-equal non-unit weights: the sample variance vanishes but
        the estimate is not exact — ``se`` floors at |p-hat|/sqrt(n)."""
        accumulator = accumulate_weights(np.full(64, 0.5), 64)
        estimate = estimate_from_moments(accumulator)
        assert estimate.value == pytest.approx(0.5)
        assert estimate.standard_error == pytest.approx(0.5 / 8.0)

    def test_all_zero_weights_take_the_degenerate_path(self):
        """Zero weights are the degenerate 0-hit triple: the estimate is
        the Laplace-smoothed boundary one, not a bare (0, 0)."""
        estimate = estimate_from_moments(accumulate_weights(np.zeros(64), 64))
        assert estimate == estimate_from_hits(0, 64)

    def test_run_until_cannot_stop_on_spurious_zero_se(self):
        """Without the floor, constant weights would report se = 0 after
        the first batch and the adaptive loop would stop immediately."""
        scenario = get_scenario("iid-settlement", depth=15)
        runner = ExperimentRunner(
            scenario, estimator=constant_half_weight, chunk_size=256
        )
        estimate = runner.run_until(9, rel_se=0.01, max_trials=2_048)
        assert estimate.trials == 2_048  # ran to the cap, did not stop early
        assert estimate.value == pytest.approx(0.5)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def counting_run_chunk(monkeypatch):
    calls = []

    def counted(scenario, estimator, size, child):
        calls.append(size)
        return run_chunk(scenario, estimator, size, child)

    monkeypatch.setattr(parallel_module, "run_chunk", counted)
    return calls


def make_runner(cache=None, chunk_size=512):
    scenario = get_scenario("iid-settlement", depth=15)
    return ExperimentRunner(scenario, chunk_size=chunk_size, cache=cache)


def _rewrite_ledger_as_v1(cache):
    """Downgrade every ledger in ``cache`` to the pre-PR-8 schema:
    bare integer hit counts, no version marker."""
    for path in cache.directory.glob("*.ledger.json"):
        payload = json.loads(path.read_text())
        payload.pop("version", None)
        payload["chunks"] = {
            index: int(triple[0])
            for index, triple in payload["chunks"].items()
        }
        path.write_text(json.dumps(payload))


class TestLedgerMigration:
    def test_v1_ledger_is_reused_without_resampling(
        self, cache, counting_run_chunk
    ):
        runner = make_runner(cache)
        runner.run(2_048, seed=17)  # 4 full chunks
        _rewrite_ledger_as_v1(cache)
        reopened = ResultCache(cache.directory)
        extended = ExperimentRunner(
            runner.scenario, chunk_size=512, cache=reopened
        )
        del counting_run_chunk[:]
        result = extended.run(4_096, seed=17)
        assert counting_run_chunk == [512] * 4  # chunks 4..7 only
        assert reopened.chunk_hits == 4
        assert result == make_runner().run(4_096, seed=17)

    def test_extension_upgrades_v1_file_to_v2(self, cache):
        runner = make_runner(cache)
        runner.run(2_048, seed=19)
        _rewrite_ledger_as_v1(cache)
        reopened = ResultCache(cache.directory)
        ExperimentRunner(
            runner.scenario, chunk_size=512, cache=reopened
        ).run(4_096, seed=19)
        (path,) = cache.directory.glob("*.ledger.json")
        payload = json.loads(path.read_text())
        assert payload["version"] == 2
        assert len(payload["chunks"]) == 8
        for triple in payload["chunks"].values():
            assert isinstance(triple, list) and len(triple) == 3
            assert triple[2] == 512

    def test_v1_count_out_of_range_is_all_miss(self, cache):
        runner = make_runner(cache)
        first = runner.run(2_048, seed=23)
        (path,) = cache.directory.glob("*.ledger.json")
        payload = json.loads(path.read_text())
        payload["chunks"] = {"0": 513}  # > chunk_size: impossible v1 count
        path.write_text(json.dumps(payload))
        extended = runner.run(4_096, seed=23)
        assert extended == make_runner().run(4_096, seed=23)
        assert runner.run(2_048, seed=23) == first

    @pytest.mark.parametrize(
        "triple",
        [
            [1.0, 1.0, 256],  # trials != chunk_size
            [float("nan"), 1.0, 512],  # non-finite moment
            [1.0, -1.0, 512],  # negative second moment
            [1.0, 1.0],  # wrong arity
            "many",  # wrong type entirely
        ],
    )
    def test_corrupt_v2_triple_is_all_miss_and_heals(
        self, cache, counting_run_chunk, triple
    ):
        runner = make_runner(cache)
        runner.run(2_048, seed=29)
        (path,) = cache.directory.glob("*.ledger.json")
        payload = json.loads(path.read_text())
        payload["chunks"]["0"] = triple
        path.write_text(json.dumps(payload))
        reopened = ResultCache(cache.directory)
        fresh_runner = ExperimentRunner(
            runner.scenario, chunk_size=512, cache=reopened
        )
        del counting_run_chunk[:]
        result = fresh_runner.run(4_096, seed=29)
        assert counting_run_chunk == [512] * 8  # every chunk resampled
        assert result == make_runner().run(4_096, seed=29)
        # The rewrite healed the file: a second extension reuses all.
        del counting_run_chunk[:]
        again = ExperimentRunner(
            runner.scenario, chunk_size=512, cache=ResultCache(cache.directory)
        )
        assert again.run(4_096, seed=29) == result
        assert counting_run_chunk == []  # estimate-level hit

    def test_weighted_chunks_round_trip_through_ledger(self, cache):
        """Non-degenerate accumulators survive the ledger bit for bit."""
        scenario = get_scenario("iid-settlement", depth=15)
        runner = ExperimentRunner(
            scenario,
            estimator=constant_half_weight,
            chunk_size=512,
            cache=cache,
        )
        first = runner.run(1_024, seed=31)
        reopened = ResultCache(cache.directory)
        rerun = ExperimentRunner(
            scenario,
            estimator=constant_half_weight,
            chunk_size=512,
            cache=reopened,
        )
        assert rerun.run(1_024, seed=31) == first
