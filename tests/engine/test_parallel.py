"""Determinism suite: the process backend is a pure wall-clock knob.

The engine's reproducibility contract says an integer-seeded run is a
pure function of ``(scenario, estimator, seed, trials, chunk_size)`` —
never of the execution backend.  These tests pin that down: serial and
process-pool runs must return *identical* ``Estimate`` objects across
1/2/4 workers, chunk partitions must tile exactly, and the legacy
generator-continuation path must refuse to parallelize (its stream is
inherently sequential).
"""

import numpy as np
import pytest

from repro.engine import (
    ExperimentRunner,
    ProcessBackend,
    chunk_sizes,
    default_workers,
    get_scenario,
    run_chunk,
    run_scenario,
)


class TestChunkPartition:
    def test_exact_tiling(self):
        assert chunk_sizes(10, 4) == [4, 4, 2]
        assert chunk_sizes(8, 4) == [4, 4]
        assert chunk_sizes(3, 5) == [3]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            chunk_sizes(0, 4)
        with pytest.raises(ValueError):
            chunk_sizes(10, 0)

    def test_partition_sums_to_trials(self):
        for trials, chunk in [(1, 1), (4096, 4096), (10_001, 4096), (7, 3)]:
            assert sum(chunk_sizes(trials, chunk)) == trials


class TestBackendIndependence:
    """Serial and parallel backends: identical Estimates, bit for bit."""

    @pytest.fixture(scope="class")
    def serial(self):
        runner = ExperimentRunner(
            get_scenario("iid-settlement", depth=20), chunk_size=1024
        )
        return runner.run(10_000, seed=42)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_identical_across_worker_counts(self, serial, workers):
        runner = ExperimentRunner(
            get_scenario("iid-settlement", depth=20),
            chunk_size=1024,
            workers=workers,
        )
        assert runner.run(10_000, seed=42) == serial

    def test_identical_on_reduced_scenario(self):
        scenario = get_scenario(
            "delta-synchronous", total_length=60, target_slot=10, depth=8
        )
        serial = ExperimentRunner(scenario, chunk_size=128).run(500, seed=9)
        parallel = ExperimentRunner(
            scenario, chunk_size=128, workers=2
        ).run(500, seed=9)
        assert serial == parallel

    def test_shared_backend_reuse(self):
        scenario = get_scenario("iid-settlement", depth=15)
        runner = ExperimentRunner(scenario, chunk_size=512)
        with ProcessBackend(2) as pool:
            first = runner.run(2_000, seed=5, backend=pool)
            second = runner.run(2_000, seed=6, backend=pool)
        assert first == runner.run(2_000, seed=5)
        assert second == runner.run(2_000, seed=6)
        assert first != second

    def test_pipelined_submit_matches_serial(self):
        """run_grid-style dispatch: submit every run's chunks before
        collecting any result — still bit-identical to serial."""
        scenario = get_scenario("iid-settlement", depth=15)
        runner = ExperimentRunner(scenario, chunk_size=256)
        with ProcessBackend(2) as pool:
            pending = [
                runner.submit(1_000, seed, pool) for seed in (31, 32, 33)
            ]
            gathered = [p.result() for p in pending]
            assert not any(p.from_cache for p in pending)
        assert gathered == [runner.run(1_000, seed) for seed in (31, 32, 33)]

    def test_run_scenario_workers_keyword(self):
        serial = run_scenario("iid-settlement", 3_000, seed=8, depth=12)
        parallel = run_scenario(
            "iid-settlement", 3_000, seed=8, depth=12, workers=2
        )
        assert serial == parallel


class TestSeedTree:
    def test_chunk_reproducible_from_its_child(self):
        """A chunk is a pure function of its spawned child seed."""
        scenario = get_scenario("iid-settlement", depth=20)
        estimator = ExperimentRunner(scenario).estimator
        child = np.random.SeedSequence(7).spawn(1)[0]
        assert run_chunk(scenario, estimator, 2048, child) == run_chunk(
            scenario, estimator, 2048, child
        )

    def test_chunk_result_is_position_independent(self):
        """A chunk's hit count depends on its child seed, not its order."""
        scenario = get_scenario("iid-settlement", depth=20)
        children = np.random.SeedSequence(21).spawn(3)
        forward = [
            run_chunk(scenario, ExperimentRunner(scenario).estimator, 512, c)
            for c in children
        ]
        backward = [
            run_chunk(scenario, ExperimentRunner(scenario).estimator, 512, c)
            for c in reversed(children)
        ]
        assert forward == backward[::-1]


class TestGuards:
    def test_generator_continuation_is_serial_only(self):
        runner = ExperimentRunner(
            get_scenario("iid-settlement", depth=10), workers=2
        )
        with pytest.raises(ValueError, match="serial-only"):
            runner.run(100, np.random.default_rng(1))

    def test_estimator_shape_validated(self):
        runner = ExperimentRunner(
            get_scenario("iid-settlement", depth=10),
            estimator=lambda scenario, batch: np.array([True]),
        )
        with pytest.raises(ValueError, match="one weight per trial"):
            runner.run(100, seed=3)

    def test_worker_count_validated(self):
        with pytest.raises(ValueError, match="workers"):
            ExperimentRunner(
                get_scenario("iid-settlement", depth=10), workers=0
            )
        with pytest.raises(ValueError, match="workers"):
            ProcessBackend(0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert default_workers() == 7

    @pytest.mark.parametrize("bad", ["0", "-2", "many", "2.5", ""])
    def test_workers_env_rejects_garbage(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_workers()


class TestBackendProtocolCompliance:
    """Every backend serves the same submit_task/submit_chunks surface."""

    @pytest.fixture(params=["serial", "process", "array", "distributed"])
    def backend(self, request):
        from repro.engine import ArrayBackend, Backend, DistributedBackend

        if request.param == "serial":
            from repro.engine import SerialBackend

            built, server = SerialBackend(), None
        elif request.param == "process":
            built, server = ProcessBackend(2), None
        elif request.param == "array":
            built, server = ArrayBackend(), None
        else:
            from repro.worker import serve

            server = serve()
            built = DistributedBackend([server.address], timeout=30.0)
        assert isinstance(built, Backend)
        yield built
        built.close()
        if server is not None:
            server.shutdown()
            server.server_close()

    def test_submit_task_positional_and_ordered(self, backend):
        futures = [backend.submit_task(divmod, n, 3) for n in range(5)]
        assert [f.result() for f in futures] == [divmod(n, 3) for n in range(5)]

    def test_submit_chunks_matches_run_chunk(self, backend):
        from repro.engine import as_accumulator

        scenario = get_scenario("iid-settlement", depth=10)
        estimator = ExperimentRunner(scenario).estimator
        children = np.random.SeedSequence(5).spawn(3)
        sizes = [256, 256, 128]
        futures = backend.submit_chunks(scenario, estimator, sizes, children)
        expected = [
            run_chunk(scenario, estimator, size, child)
            for size, child in zip(sizes, children)
        ]
        # The distributed wire carries the plain triple; every backend's
        # reply must normalise to the same accumulator.
        results = [
            as_accumulator(future.result(), size)
            for future, size in zip(futures, sizes)
        ]
        assert results == expected

    def test_submit_chunks_validates_pairing(self, backend):
        scenario = get_scenario("iid-settlement", depth=10)
        estimator = ExperimentRunner(scenario).estimator
        with pytest.raises(ValueError, match="child per chunk"):
            backend.submit_chunks(
                scenario, estimator, [256], np.random.SeedSequence(5).spawn(2)
            )

    def test_window_estimators_validate_bounds(self):
        from repro.engine import (
            NoConsecutiveCatalanInWindow,
            NoUniqueCatalanInWindow,
        )

        with pytest.raises(ValueError, match="window_start"):
            NoUniqueCatalanInWindow(0, 10)
        with pytest.raises(ValueError, match="window_length"):
            NoConsecutiveCatalanInWindow(1, 0)
