"""Layer 5: the protocol workload through the engine stack.

ProtocolScenario registration/overrides/validation, the violation
estimators, runner integration, sweep-grid expansion, and cache
round-trips — the protocol analogue of the scenario/runner/sweep suites.
"""

import numpy as np
import pytest

from repro.engine import (
    ProtocolRunner,
    ProtocolScenario,
    ResultCache,
    get_grid,
    get_scenario,
    run_grid,
    scenario_names,
)
from repro.engine.protocol import (
    protocol_cp_violation,
    protocol_deep_reorg,
    protocol_settlement_violation,
    run_protocol_scalar,
)
from repro.engine.cache import estimator_token, scenario_fingerprint
from repro.protocol.adversary import (
    MaxDelayAdversary,
    NullAdversary,
    PrivateChainAdversary,
    SplitAdversary,
)


class TestScenarioRegistry:
    def test_builtins_registered(self):
        names = scenario_names()
        for name in (
            "protocol-honest",
            "protocol-private-chain",
            "protocol-split",
            "protocol-delta",
        ):
            assert name in names
            assert isinstance(get_scenario(name), ProtocolScenario)

    def test_overrides_produce_new_frozen_copy(self):
        base = get_scenario("protocol-split")
        variant = get_scenario(
            "protocol-split", tie_break="consistent", total_slots=30
        )
        assert variant.tie_break == "consistent"
        assert variant.total_slots == 30
        assert base.tie_break == "adversarial"

    def test_derived_party_counts(self):
        scenario = ProtocolScenario(
            name="x", parties=10, adversary_fraction=0.4
        )
        assert scenario.corrupted == 4
        assert scenario.honest == 6

    @pytest.mark.parametrize(
        "overrides",
        [
            {"parties": 1},
            {"adversary_fraction": 1.0},
            {"adversary_fraction": -0.1},
            {"activity": 0.0},
            {"total_slots": 0},
            {"delta": -1},
            {"tie_break": "coin-flip"},
            {"adversary": "nope"},
            {"target_slot": 0},
            {"depth": 0},
        ],
    )
    def test_validation(self, overrides):
        config = dict(name="bad")
        config.update(overrides)
        with pytest.raises(ValueError):
            ProtocolScenario(**config)

    def test_adversary_construction(self):
        cases = {
            "null": NullAdversary,
            "private-chain": PrivateChainAdversary,
            "split": SplitAdversary,
            "max-delay": MaxDelayAdversary,
        }
        for kind, cls in cases.items():
            scenario = ProtocolScenario(name="x", adversary=kind, delta=1)
            assert type(scenario.build_adversary()) is cls

    def test_private_chain_hold_defaults_to_depth(self):
        scenario = ProtocolScenario(
            name="x", adversary="private-chain", depth=7
        )
        assert scenario.build_adversary().hold == 7
        explicit = ProtocolScenario(
            name="x", adversary="private-chain", depth=7, hold=2
        )
        assert explicit.build_adversary().hold == 2

    def test_fingerprint_is_json_ready(self):
        import json

        fingerprint = scenario_fingerprint(get_scenario("protocol-split"))
        assert json.loads(json.dumps(fingerprint)) == fingerprint


class TestSampling:
    def test_sample_batch_is_generator_deterministic(self):
        scenario = get_scenario("protocol-split", total_slots=30)
        first = scenario.sample_batch(4, np.random.default_rng(3))
        second = scenario.sample_batch(4, np.random.default_rng(3))
        assert (first.seeds == second.seeds).all()
        tips = lambda batch: [
            r.records[-1].adopted_tips for r in batch.results
        ]
        assert tips(first) == tips(second)

    def test_estimators_return_per_trial_flags(self):
        scenario = get_scenario("protocol-split", total_slots=30)
        batch = scenario.sample_batch(5, np.random.default_rng(1))
        for estimator in (
            protocol_settlement_violation,
            protocol_cp_violation,
            protocol_deep_reorg,
        ):
            flags = estimator(scenario, batch)
            assert flags.shape == (5,)
            assert flags.dtype == bool

    def test_split_ablation_signal(self):
        """The Theorem 2 ablation at estimator level: deep reorgs under
        A0, none under A0′, on the same seeds."""
        adversarial = get_scenario("protocol-split")
        consistent = get_scenario("protocol-split", tie_break="consistent")
        flags_a = protocol_deep_reorg(
            adversarial, adversarial.sample_batch(6, np.random.default_rng(7))
        )
        flags_c = protocol_deep_reorg(
            consistent, consistent.sample_batch(6, np.random.default_rng(7))
        )
        assert flags_a.all()
        assert not flags_c.any()


class TestAdaptiveProtocolRuns:
    """ProtocolRunner inherits run_until: adaptive stopping over whole
    simulated executions, same determinism and ledger contract."""

    def test_adaptive_identical_across_workers(self, tmp_path):
        scenario = get_scenario("protocol-split", total_slots=30)
        serial = ProtocolRunner(scenario, chunk_size=4).run_until(
            5, rel_se=0.5, max_trials=16
        )
        parallel = ProtocolRunner(
            scenario, chunk_size=4, workers=2
        ).run_until(5, rel_se=0.5, max_trials=16)
        assert serial == parallel

    def test_warm_ledger_skips_simulation_batches(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = get_scenario("protocol-split", total_slots=30)
        first = ProtocolRunner(scenario, chunk_size=4, cache=cache)
        estimate = first.run_until(5, rel_se=0.5, max_trials=16)
        again = ProtocolRunner(scenario, chunk_size=4, cache=cache)
        assert again.run_until(5, rel_se=0.5, max_trials=16) == estimate
        assert again.last_report.from_cache
        # A trials extension re-executes only the new simulation chunks.
        extended = ProtocolRunner(scenario, chunk_size=4, cache=cache)
        bumped = extended.run(24, seed=5)
        assert extended.last_report.reused_trials >= estimate.trials
        assert bumped == ProtocolRunner(scenario, chunk_size=4).run(
            24, seed=5
        )


class TestRunnerIntegration:
    def test_default_estimator_by_adversary(self):
        split = ProtocolRunner(get_scenario("protocol-split"))
        assert split.estimator is protocol_deep_reorg
        honest = ProtocolRunner(get_scenario("protocol-honest"))
        assert honest.estimator is protocol_settlement_violation

    def test_rejects_analytical_scenarios(self):
        with pytest.raises(TypeError, match="ProtocolScenario"):
            ProtocolRunner(get_scenario("iid-settlement"))

    def test_estimators_have_cache_tokens(self):
        for estimator in (
            protocol_settlement_violation,
            protocol_cp_violation,
            protocol_deep_reorg,
        ):
            token = estimator_token(estimator)
            assert token.startswith("repro.engine.protocol.")

    def test_scalar_rejects_unknown_estimator(self):
        scenario = get_scenario("protocol-split", total_slots=20)
        with pytest.raises(ValueError, match="scalar twin"):
            run_protocol_scalar(
                scenario, 2, seed=1, estimator=lambda s, b: None
            )

    def test_cache_round_trip_zero_reexecution(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = get_scenario("protocol-split", total_slots=30)
        first = ProtocolRunner(scenario, cache=cache).run(4, seed=11)
        assert cache.stores == 1
        second = ProtocolRunner(scenario, cache=cache).run(4, seed=11)
        assert second == first
        assert cache.hits == 1
        assert cache.stores == 1  # nothing re-executed, nothing re-stored


class TestProtocolGrid:
    def test_registered_with_protocol_axes(self):
        grid = get_grid("protocol")
        assert grid.base == "protocol-split"
        assert grid.axis_names == [
            "adversary_fraction",
            "activity",
            "delta",
            "tie_break",
        ]
        assert grid.size() == 16

    def test_points_resolve_to_protocol_scenarios(self):
        grid = get_grid("protocol")
        points = grid.points()
        assert len(points) == grid.size()
        for point in points:
            assert isinstance(point.scenario, ProtocolScenario)
            assert point.scenario.tie_break == point.params["tie_break"]
            assert point.scenario.delta == point.params["delta"]

    def test_run_grid_serial_matches_parallel(self, tmp_path):
        grid = get_grid("protocol")
        serial = run_grid(grid, trials=3)
        parallel = run_grid(grid, trials=3, workers=2)
        assert serial == parallel
        # The ablation shows in the tidy rows: the adversarial rule's
        # deep-reorg rate dominates the consistent rule's everywhere.
        by_rule = lambda rows, rule: [
            r["value"] for r in rows if r["tie_break"] == rule
        ]
        assert sum(by_rule(serial, "adversarial")) >= sum(
            by_rule(serial, "consistent")
        )
