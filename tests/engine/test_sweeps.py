"""SweepGrid expansion, run_grid orchestration, the CLI, and the
boundary-corrected ``estimate_from_hits``."""

import dataclasses
import json
import math

import pytest

import repro.sweep as sweep_cli
from repro.engine import (
    ExperimentRunner,
    ResultCache,
    SweepGrid,
    estimate_from_hits,
    get_grid,
    grid_names,
    run_grid,
    select_points,
)


class TestGridExpansion:
    def test_product_order_last_axis_fastest(self):
        grid = SweepGrid(
            name="t-order",
            base="iid-settlement",
            axes=(("alpha", (0.1, 0.2)), ("depth", (5, 10))),
            trials=100,
            seed=50,
        )
        points = grid.points()
        assert [p.params for p in points] == [
            {"alpha": 0.1, "depth": 5},
            {"alpha": 0.1, "depth": 10},
            {"alpha": 0.2, "depth": 5},
            {"alpha": 0.2, "depth": 10},
        ]
        assert [p.seed for p in points] == [50, 51, 52, 53]
        assert grid.size() == 4

    def test_virtual_axes_resolve_to_probabilities(self):
        grid = SweepGrid(
            name="t-virtual",
            base="iid-settlement",
            axes=(("alpha", (0.25,)), ("unique_fraction", (0.4,))),
            trials=100,
            seed=0,
        )
        (point,) = grid.points()
        probabilities = point.scenario.probabilities
        assert probabilities.p_adversarial == pytest.approx(0.25)
        assert probabilities.p_unique == pytest.approx(0.75 * 0.4)

    def test_fixed_alpha_override_with_fraction_axis(self):
        grid = SweepGrid(
            name="t-fixed-alpha",
            base="iid-settlement",
            axes=(("unique_fraction", (0.5,)),),
            trials=100,
            seed=0,
            overrides=(("alpha", 0.2),),
        )
        (point,) = grid.points()
        assert point.scenario.probabilities.p_adversarial == pytest.approx(0.2)

    def test_fraction_axis_without_alpha_rejected(self):
        grid = SweepGrid(
            name="t-no-alpha",
            base="iid-settlement",
            axes=(("unique_fraction", (0.5,)),),
            trials=100,
            seed=0,
        )
        with pytest.raises(ValueError, match="alpha"):
            grid.points()

    def test_field_axis_overrides_scenario(self):
        grid = SweepGrid(
            name="t-depth",
            base="iid-settlement",
            axes=(("depth", (7, 9)),),
            trials=100,
            seed=0,
        )
        assert [p.scenario.depth for p in grid.points()] == [7, 9]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one axis"):
            SweepGrid(name="t", base="iid-settlement", axes=(), trials=1, seed=0)
        with pytest.raises(ValueError, match="duplicate axis"):
            SweepGrid(
                name="t",
                base="iid-settlement",
                axes=(("depth", (1,)), ("depth", (2,))),
                trials=1,
                seed=0,
            )
        with pytest.raises(ValueError, match="no values"):
            SweepGrid(
                name="t",
                base="iid-settlement",
                axes=(("depth", ()),),
                trials=1,
                seed=0,
            )
        with pytest.raises(ValueError, match="unknown estimator"):
            SweepGrid(
                name="t",
                base="iid-settlement",
                axes=(("depth", (5,)),),
                trials=1,
                seed=0,
                estimator="nope",
            )


class TestRunGrid:
    GRID = SweepGrid(
        name="t-run",
        base="iid-settlement",
        axes=(("depth", (8, 12)),),
        trials=2_000,
        seed=30,
        chunk_size=512,
    )

    def test_rows_match_direct_runner_calls(self):
        rows = run_grid(self.GRID)
        for row, point in zip(rows, self.GRID.points()):
            direct = ExperimentRunner(
                point.scenario, chunk_size=512
            ).run(2_000, point.seed)
            assert row["value"] == direct.value
            assert row["standard_error"] == direct.standard_error
            assert row["trials"] == 2_000
            assert row["cached"] is False

    def test_parallel_grid_identical_to_serial(self):
        assert run_grid(self.GRID) == run_grid(self.GRID, workers=2)

    def test_cache_round_trip_marks_rows(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_grid(self.GRID, cache=cache)
        warm = run_grid(self.GRID, cache=cache)
        assert all(not row["cached"] for row in cold)
        assert all(row["cached"] for row in warm)
        for cold_row, warm_row in zip(cold, warm):
            assert cold_row["value"] == warm_row["value"]
            assert cold_row["standard_error"] == warm_row["standard_error"]
        assert cache.stores == len(cold)

    def test_trials_override_rekeys(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_grid(self.GRID, cache=cache)
        rerun = run_grid(self.GRID, trials=2_001, cache=cache)
        assert all(not row["cached"] for row in rerun)


class TestAdaptiveGrid:
    """Per-point precision targets: run_grid through run_until."""

    GRID = SweepGrid(
        name="t-adaptive",
        base="iid-settlement",
        axes=(("depth", (5, 40)),),  # easy cell, rare cell
        trials=50_000,
        seed=60,
        chunk_size=512,
    )

    def test_rare_cells_get_more_trials(self):
        rows = run_grid(self.GRID, target_se=0.01)
        easy, rare = rows
        assert easy["value"] > rare["value"]
        assert rare["trials"] >= easy["trials"]
        assert all(row["standard_error"] <= 0.01 for row in rows)
        assert all(row["trials"] <= 50_000 for row in rows)

    def test_adaptive_identical_across_workers(self):
        serial = run_grid(self.GRID, target_se=0.01)
        assert run_grid(self.GRID, target_se=0.01, workers=2) == serial

    def test_grid_declared_targets_are_defaults(self):
        declared = dataclasses.replace(
            self.GRID, name="t-adaptive-declared", target_se=0.01
        )
        assert run_grid(declared) == run_grid(self.GRID, target_se=0.01)

    def test_adaptive_rows_match_run_until(self):
        rows = run_grid(self.GRID, target_se=0.01)
        for row, point in zip(rows, self.GRID.points()):
            direct = ExperimentRunner(
                point.scenario, chunk_size=512
            ).run_until(point.seed, target_se=0.01, max_trials=50_000)
            assert row["value"] == direct.value
            assert row["trials"] == direct.trials

    def test_warm_ledger_serves_adaptive_rerun(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_grid(self.GRID, target_se=0.01, cache=cache)
        warm = run_grid(self.GRID, target_se=0.01, cache=cache)
        assert [row["value"] for row in warm] == [
            row["value"] for row in cold
        ]
        assert all(row["cached"] for row in warm)
        assert all(row["sampled_trials"] == 0 for row in warm)

    def test_precision_field_validation(self):
        with pytest.raises(ValueError, match="target_se"):
            dataclasses.replace(self.GRID, target_se=0.0)
        with pytest.raises(ValueError, match="rel_se"):
            dataclasses.replace(self.GRID, rel_se=-1.0)
        with pytest.raises(ValueError, match="max_trials"):
            dataclasses.replace(self.GRID, max_trials=0)

    def test_cli_adaptive_flags(self, capsys, tmp_path):
        code = sweep_cli.main(
            [
                "stake",
                "--target-se",
                "0.01",
                "--max-trials",
                "8192",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reused" in out  # the ledger-reuse column
        assert "ledger:" in out  # chunk-level counters in the footer
        assert "trials realized" in out

    def test_cli_rejects_bad_precision_flags(self, capsys):
        assert sweep_cli.main(["stake", "--target-se", "0"]) == 2
        assert "--target-se" in capsys.readouterr().err
        assert sweep_cli.main(["stake", "--rel-se", "-1"]) == 2
        assert "--rel-se" in capsys.readouterr().err
        assert sweep_cli.main(
            ["stake", "--target-se", "0.01", "--max-trials", "0"]
        ) == 2
        assert "--max-trials" in capsys.readouterr().err
        # --max-trials without any adaptive target is a no-op: reject it.
        assert sweep_cli.main(["stake", "--max-trials", "5000"]) == 2
        assert "only caps adaptive runs" in capsys.readouterr().err


class TestLedgerReuseRows:
    """run_grid rows expose the chunk-ledger split of their trials."""

    GRID = SweepGrid(
        name="t-ledger-rows",
        base="iid-settlement",
        axes=(("depth", (8, 12)),),
        trials=2_048,
        seed=70,
        chunk_size=512,
    )

    def test_trials_bump_reuses_old_chunks(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_grid(self.GRID, cache=cache)
        assert all(row["reused_trials"] == 0 for row in cold)
        assert all(row["sampled_trials"] == 2_048 for row in cold)
        bumped = run_grid(self.GRID, trials=4_096, cache=cache)
        assert all(row["reused_trials"] == 2_048 for row in bumped)
        assert all(row["sampled_trials"] == 2_048 for row in bumped)
        assert all(not row["cached"] for row in bumped)
        # The bumped rows are bit-identical to a cold 4096-trial run.
        assert [row["value"] for row in bumped] == [
            row["value"] for row in run_grid(self.GRID, trials=4_096)
        ]


class TestSeedAndOnly:
    """The sweep-CLI debugging satellites: --seed and --only."""

    GRID = SweepGrid(
        name="t-filter",
        base="iid-settlement",
        axes=(("alpha", (0.1, 0.2)), ("depth", (8, 12))),
        trials=1_000,
        seed=400,
        chunk_size=256,
    )

    def test_select_points_keeps_full_grid_seeds(self):
        points = self.GRID.points()
        selected = select_points(self.GRID, points, {"depth": (12,)})
        assert [p.params for p in selected] == [
            {"alpha": 0.1, "depth": 12},
            {"alpha": 0.2, "depth": 12},
        ]
        assert [p.seed for p in selected] == [401, 403]  # not 400, 401

    def test_select_points_rejects_unknown_axis(self):
        points = self.GRID.points()
        with pytest.raises(ValueError, match="unknown axis"):
            select_points(self.GRID, points, {"gamma": (1,)})
        with pytest.raises(ValueError, match="matches no grid point"):
            select_points(self.GRID, points, {"depth": (99,)})

    def test_run_grid_only_rows_match_full_run(self):
        full = run_grid(self.GRID)
        filtered = run_grid(self.GRID, only={"depth": (12,)})
        assert filtered == [row for row in full if row["depth"] == 12]

    def test_run_grid_only_hits_full_run_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_grid(self.GRID, cache=cache)
        filtered = run_grid(self.GRID, cache=cache, only={"alpha": (0.2,)})
        assert all(row["cached"] for row in filtered)

    def test_run_grid_seed_override_reseeds_points(self):
        rows = run_grid(self.GRID, seed=900)
        assert [row["seed"] for row in rows] == [900, 901, 902, 903]
        assert run_grid(self.GRID, seed=900) == rows

    def test_cli_only_and_seed(self, capsys, tmp_path):
        code = sweep_cli.main(
            [
                "table1",
                "--trials",
                "300",
                "--seed",
                "77",
                "--only",
                "alpha=0.1",
                "--only",
                "depth=10,20",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "6 points" in out  # 1 alpha x 3 fractions x 2 depths
        assert "cache: 0 hits / 6 misses / 6 stores" in out

        # Same filtered rerun: all six points served from cache.
        sweep_cli.main(
            [
                "table1",
                "--trials",
                "300",
                "--seed",
                "77",
                "--only",
                "alpha=0.1",
                "--only",
                "depth=10,20",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert "6 from cache" in out
        assert "cache: 6 hits / 0 misses / 0 stores (100.0% hit rate)" in out

    def test_cli_rejects_bad_only(self, capsys):
        assert sweep_cli.main(["table1", "--only", "nope=1"]) == 2
        assert "unknown axis" in capsys.readouterr().err
        assert sweep_cli.main(["table1", "--only", "alpha=0.77"]) == 2
        assert "no value" in capsys.readouterr().err
        assert sweep_cli.main(["table1", "--only", "alpha"]) == 2
        assert "axis=v1,v2" in capsys.readouterr().err

    def test_parse_only_matches_string_axes(self):
        grid = get_grid("protocol")
        only = sweep_cli.parse_only(grid, ["tie_break=adversarial"])
        assert only == {"tie_break": ["adversarial"]}


class TestBuiltinGrids:
    def test_registry_contents(self):
        assert {"table1", "stake", "delta", "bounds-vs-exact"} <= set(
            grid_names()
        )

    def test_builtin_grids_expand(self):
        for name in grid_names():
            grid = get_grid(name)
            points = grid.points()
            assert len(points) == grid.size()

    def test_unknown_grid(self):
        with pytest.raises(KeyError, match="unknown grid"):
            get_grid("no-such-grid")


class TestCli:
    def test_list(self, capsys):
        assert sweep_cli.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "delta" in out

    def test_run_writes_table_and_json(self, capsys, tmp_path):
        out_path = tmp_path / "rows.json"
        code = sweep_cli.main(
            [
                "stake",
                "--trials",
                "500",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "value" in out
        assert "3 points" in out
        payload = json.loads(out_path.read_text())
        assert payload["grid"] == "stake"
        assert len(payload["rows"]) == 3

        # Warm rerun: every point served from cache.
        assert (
            sweep_cli.main(
                [
                    "stake",
                    "--trials",
                    "500",
                    "--cache-dir",
                    str(tmp_path / "cache"),
                ]
            )
            == 0
        )
        assert "3 from cache" in capsys.readouterr().out

    def test_unknown_grid_exit_code(self, capsys):
        assert sweep_cli.main(["no-such-grid"]) == 2
        assert "unknown grid" in capsys.readouterr().err


class TestEstimateBoundary:
    """The satellite fix: estimate_from_hits at p ∈ {0, 1} and n = 0."""

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError, match="trials must be positive"):
            estimate_from_hits(0, 0)

    def test_hits_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            estimate_from_hits(5, 4)
        with pytest.raises(ValueError, match="outside"):
            estimate_from_hits(-1, 4)

    @pytest.mark.parametrize("trials", [100, 10_000])
    def test_boundary_standard_error_is_order_one_over_n(self, trials):
        for hits in (0, trials):
            estimate = estimate_from_hits(hits, trials)
            smoothed = (hits + 1.0) / (trials + 2.0)
            expected = math.sqrt(smoothed * (1.0 - smoothed) / trials)
            assert estimate.standard_error == pytest.approx(expected)
            assert estimate.standard_error > 1.0 / (2.0 * trials)

    def test_boundary_within_no_false_positive(self):
        """An all-miss estimate must not claim to resolve a target it
        cannot distinguish from zero — but must also not accept targets
        far above its resolution (the old 1e-12 floor accepted nothing;
        a 0.0 standard error would accept only the point itself)."""
        estimate = estimate_from_hits(0, 10_000)
        assert estimate.within(1e-5)  # below resolution: statistically same
        assert not estimate.within(0.01)  # resolvable difference: rejected

    def test_interior_unchanged(self):
        estimate = estimate_from_hits(250, 1_000)
        assert estimate.value == 0.25
        assert estimate.standard_error == pytest.approx(
            math.sqrt(0.25 * 0.75 / 1_000)
        )
