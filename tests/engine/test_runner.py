"""ExperimentRunner: reproducibility, estimator equivalence, DP agreement."""

import numpy as np
import pytest

from repro.analysis.exact import settlement_violation_probability
from repro.analysis.montecarlo import (
    estimate_no_consecutive_catalan_in_window,
    estimate_no_consecutive_catalan_in_window_scalar,
    estimate_no_unique_catalan_in_window,
    estimate_no_unique_catalan_in_window_scalar,
    estimate_settlement_violation,
    estimate_settlement_violation_scalar,
)
from repro.core.distributions import (
    bernoulli_condition,
    semi_synchronous_condition,
)
from repro.delta.settlement import is_k_delta_settled
from repro.engine import (
    ExperimentRunner,
    delta_settlement_violation,
    get_scenario,
    kernels,
    run_scenario,
)


class TestReproducibility:
    def test_bit_reproducible_for_fixed_seed(self):
        runner = ExperimentRunner(get_scenario("iid-settlement", depth=20))
        first = runner.run(10_000, seed=42)
        second = runner.run(10_000, seed=42)
        assert first == second

    def test_chunking_covers_all_trials(self):
        runner = ExperimentRunner(
            get_scenario("iid-settlement", depth=10), chunk_size=300
        )
        estimate = runner.run(1000, seed=1)
        assert estimate.trials == 1000

    def test_different_seeds_differ(self):
        runner = ExperimentRunner(get_scenario("iid-settlement", depth=20))
        assert runner.run(5000, seed=1) != runner.run(5000, seed=2)

    def test_estimator_shape_validated(self):
        runner = ExperimentRunner(
            get_scenario("iid-settlement", depth=10),
            estimator=lambda scenario, batch: np.array([True]),
        )
        with pytest.raises(ValueError, match="one weight per trial"):
            runner.run(100, seed=3)


class TestAgreementWithExactDP:
    def test_stationary(self):
        scenario = get_scenario("iid-settlement", depth=25)
        estimate = ExperimentRunner(scenario).run(40_000, seed=5)
        exact = settlement_violation_probability(scenario.probabilities, 25)
        assert estimate.within(exact, sigmas=4)

    def test_finite_prefix(self):
        scenario = get_scenario("iid-finite-prefix")
        estimate = ExperimentRunner(scenario).run(40_000, seed=6)
        exact = settlement_violation_probability(
            scenario.probabilities,
            scenario.depth,
            prefix_length=scenario.prefix_model,
        )
        assert estimate.within(exact, sigmas=4)

    def test_martingale_dominated_by_iid(self):
        scenario = get_scenario("martingale-damped")
        damped = ExperimentRunner(scenario).run(30_000, seed=7)
        iid = ExperimentRunner(
            get_scenario(
                "martingale-damped", sampler="iid", correlation=1.0
            )
        ).run(30_000, seed=7)
        slack = 4 * (damped.standard_error + iid.standard_error)
        assert damped.value <= iid.value + slack

    def test_run_scenario_convenience(self):
        direct = ExperimentRunner(get_scenario("iid-settlement", depth=15)).run(
            2000, 8
        )
        convenient = run_scenario("iid-settlement", 2000, seed=8, depth=15)
        assert direct == convenient


class TestDeltaEstimator:
    def test_matches_scalar_decision_procedure(self):
        scenario = get_scenario(
            "delta-synchronous",
            probabilities=semi_synchronous_condition(0.5, 0.2, 0.2),
            depth=5,
            target_slot=4,
            total_length=30,
            delta=2,
        )
        generator = np.random.default_rng(9)
        batch = scenario.sample_batch(400, generator)
        hits = delta_settlement_violation(scenario, batch)

        replay = np.random.default_rng(9)
        raw = kernels.sample_characteristic_matrix(
            scenario.probabilities, 400, scenario.total_length, replay
        )
        for i, word in enumerate(kernels.decode_matrix(raw)):
            expected = not is_k_delta_settled(
                word, scenario.target_slot, scenario.depth, scenario.delta
            )
            assert bool(hits[i]) == expected


class TestScalarOracleBitEquality:
    """Batched estimators and their *_scalar twins share the documented
    seed discipline: equal seeds must give bit-identical estimates."""

    probabilities = bernoulli_condition(0.4, 0.3)

    @pytest.mark.parametrize("prefix_length", [None, 7])
    def test_settlement_pair(self, prefix_length):
        batched = estimate_settlement_violation(
            self.probabilities, 20, 1500, 101, prefix_length=prefix_length
        )
        scalar = estimate_settlement_violation_scalar(
            self.probabilities, 20, 1500, 101, prefix_length=prefix_length
        )
        assert batched == scalar

    def test_unique_catalan_pair(self):
        args = (self.probabilities, 10, 20, 60, 1000, 102)
        assert estimate_no_unique_catalan_in_window(
            *args
        ) == estimate_no_unique_catalan_in_window_scalar(*args)

    def test_consecutive_catalan_pair(self):
        args = (self.probabilities, 10, 20, 60, 1000, 103)
        assert estimate_no_consecutive_catalan_in_window(
            *args
        ) == estimate_no_consecutive_catalan_in_window_scalar(*args)
