"""Array-namespace dispatch and the ArrayBackend parity contract.

The kernels resolve their array namespace from their *inputs* (the
``__array_namespace__`` protocol), falling back to the module default;
``ArrayBackend`` samples every chunk on the host, evaluates it through
the chosen namespace, and self-checks against the NumPy path.  These
tests prove the dispatch actually routes through a foreign namespace (a
tracing shim around NumPy) and pin the parity modes: bitwise equality
by default, documented integer ulp-tolerance fallback, both bit-identical
to the serial backend whenever they pass.
"""

import numpy as np
import pytest

from repro.engine import (
    ArrayBackend,
    ChunkAccumulator,
    ExperimentRunner,
    SerialBackend,
    get_scenario,
    run_chunk_array,
)
from repro.engine.array_api import (
    array_namespace,
    default_namespace,
    prefix_maximum,
    prefix_minimum,
    set_default_namespace,
    to_namespace,
    to_numpy,
    use_namespace,
)


class TracedArray(np.ndarray):
    """An ndarray that declares the tracing namespace below."""

    def __array_namespace__(self, api_version=None):
        return TRACING


class _TracingNamespace:
    """A NumPy delegate that records which functions the kernels call."""

    __name__ = "tracing_numpy"

    def __init__(self):
        self.calls = []

    def asarray(self, obj, **kwargs):
        self.calls.append("asarray")
        return np.asarray(obj, **kwargs).view(TracedArray)

    def __getattr__(self, name):
        attribute = getattr(np, name)
        # Wrap plain functions/ufuncs only: dtypes (np.int64) and other
        # types must pass through untouched to stay usable as dtype=.
        if callable(attribute) and not isinstance(attribute, type):
            def traced(*args, **kwargs):
                self.calls.append(name)
                return attribute(*args, **kwargs)

            return traced
        return attribute


TRACING = _TracingNamespace()


class _NoAccumulate:
    """Minimal namespace without ufunc ``.accumulate`` (strict array-API)."""

    __name__ = "no_accumulate"

    @staticmethod
    def asarray(obj, **kwargs):
        return np.asarray(obj, **kwargs)

    @staticmethod
    def minimum(a, b):
        return np.minimum(a, b)

    @staticmethod
    def maximum(a, b):
        return np.maximum(a, b)


class TestNamespaceResolution:
    def test_inputs_win_over_default(self):
        traced = np.zeros(3).view(TracedArray)
        assert array_namespace(traced) is TRACING
        assert array_namespace(np.zeros(3), traced) is np  # first wins

    def test_plain_arrays_fall_back_to_default(self):
        assert default_namespace() is np
        with use_namespace(TRACING):
            assert array_namespace(object()) is TRACING
        assert default_namespace() is np

    def test_default_namespace_is_validated(self):
        with pytest.raises(TypeError):
            set_default_namespace(object())

    def test_conversion_round_trip(self):
        array = np.arange(5)
        assert to_namespace(np, array) is array  # NumPy-on-NumPy: no copy
        traced = to_namespace(TRACING, array)
        assert isinstance(traced, TracedArray)
        assert np.array_equal(to_numpy(traced), array)

    def test_prefix_scan_fallback_matches_accumulate(self):
        rng = np.random.default_rng(7)
        matrix = rng.integers(-50, 50, size=(23, 37))
        assert np.array_equal(
            prefix_minimum(_NoAccumulate, matrix),
            np.minimum.accumulate(matrix, axis=1),
        )
        assert np.array_equal(
            prefix_maximum(_NoAccumulate, matrix),
            np.maximum.accumulate(matrix, axis=1),
        )


class TestArrayBackend:
    """ArrayBackend is a pure wall-clock knob, like every other backend."""

    def test_numpy_namespace_matches_serial(self):
        runner = ExperimentRunner(
            get_scenario("iid-settlement", depth=20), chunk_size=1024
        )
        serial = runner.run(10_000, seed=42, backend=SerialBackend())
        via_array = runner.run(10_000, seed=42, backend=ArrayBackend())
        assert via_array == serial

    def test_foreign_namespace_is_actually_used(self):
        runner = ExperimentRunner(
            get_scenario("iid-settlement", depth=20), chunk_size=1024
        )
        serial = runner.run(5_000, seed=42, backend=SerialBackend())
        TRACING.calls.clear()
        traced = runner.run(
            5_000, seed=42, backend=ArrayBackend(TRACING, parity="bitwise")
        )
        assert traced == serial  # bitwise parity held on every chunk
        assert "asarray" in TRACING.calls  # batch crossed the boundary
        # The kernels themselves issued calls through the namespace —
        # the dispatch is real, not a NumPy shortcut.
        assert len(TRACING.calls) > 10

    def test_protocol_workload_falls_back_to_plain_path(self):
        scenario = get_scenario("protocol-honest")
        runner = ExperimentRunner(scenario, chunk_size=8)
        serial = runner.run(16, seed=3, backend=SerialBackend())
        TRACING.calls.clear()
        traced = runner.run(16, seed=3, backend=ArrayBackend(TRACING))
        assert traced == serial
        assert TRACING.calls == []  # non-array batches never upload

    def test_submit_chunks_validates_pairing(self):
        backend = ArrayBackend()
        with pytest.raises(ValueError):
            backend.submit_chunks(
                get_scenario("iid-settlement"),
                lambda s, b: np.zeros(1, dtype=bool),
                [4],
                [],
            )

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            ArrayBackend(parity=-1)

    def test_submit_task_is_eager(self):
        assert ArrayBackend().submit_task(sum, (1, 2, 3)).result() == 6


def _divergent_estimator(scenario, batch):
    """One hit flipped when evaluated under a non-NumPy default namespace.

    Deterministic stand-in for a namespace without IEEE double
    semantics: the device result drifts by exactly one hit per chunk.
    """
    reaches = np.asarray(batch.symbols).sum(axis=1)
    hits = np.asarray(reaches % 2 == 0)
    if default_namespace() is not np:
        hits = hits.copy()
        hits[0] = ~hits[0]
    return hits


class TestParityContract:
    def setup_method(self):
        self.scenario = get_scenario("iid-settlement", depth=10)
        self.child = np.random.SeedSequence(11, spawn_key=(0,))

    def test_bitwise_parity_catches_divergence(self):
        with pytest.raises(AssertionError, match="ulp tolerance"):
            run_chunk_array(
                self.scenario,
                _divergent_estimator,
                64,
                self.child,
                TRACING,
                parity="bitwise",
            )

    def test_ulp_tolerance_bounds_the_drift(self):
        accumulator = run_chunk_array(
            self.scenario,
            _divergent_estimator,
            64,
            self.child,
            TRACING,
            parity=1,
        )
        assert isinstance(accumulator, ChunkAccumulator)
        assert accumulator.trials == 64
        with pytest.raises(AssertionError, match="drifted"):
            run_chunk_array(
                self.scenario,
                _divergent_estimator,
                64,
                self.child,
                TRACING,
                parity=0,
            )

    def test_parity_none_trusts_the_namespace(self):
        accumulator = run_chunk_array(
            self.scenario,
            _divergent_estimator,
            64,
            self.child,
            TRACING,
            parity=None,
        )
        reference = run_chunk_array(
            self.scenario, _divergent_estimator, 64, self.child, np
        )
        assert accumulator != reference  # the (injected) drift went unchecked
