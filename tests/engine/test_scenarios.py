"""The scenario registry: validation, overrides, batch semantics."""

import numpy as np
import pytest

from repro.core.distributions import (
    bernoulli_condition,
    semi_synchronous_condition,
)
from repro.engine import (
    Scenario,
    adversarial_stake_sweep,
    get_scenario,
    kernels,
    register,
    scenario_names,
)
from repro.engine.scenarios import PREFIX_STATIONARY, SAMPLER_MARTINGALE


class TestRegistry:
    def test_builtins_present(self):
        names = scenario_names()
        for expected in (
            "iid-settlement",
            "iid-finite-prefix",
            "martingale-damped",
            "delta-synchronous",
        ):
            assert expected in names

    def test_get_with_overrides_returns_copy(self):
        base = get_scenario("iid-settlement")
        deeper = get_scenario("iid-settlement", depth=500)
        assert deeper.depth == 500
        assert get_scenario("iid-settlement").depth == base.depth

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="registered"):
            get_scenario("no-such-workload")

    def test_double_register_rejected(self):
        scenario = get_scenario("iid-settlement")
        with pytest.raises(ValueError, match="already registered"):
            register(scenario)

    def test_stake_sweep_family(self):
        scenarios = adversarial_stake_sweep((0.10, 0.20), depth=60)
        assert [s.depth for s in scenarios] == [60, 60]
        assert all(s.name.startswith("stake-sweep/") for s in scenarios)


class TestValidation:
    def test_positive_depth_required(self):
        with pytest.raises(ValueError, match="depth"):
            Scenario("bad", bernoulli_condition(0.3, 0.3), depth=0)

    def test_martingale_needs_explicit_prefix(self):
        with pytest.raises(ValueError, match="martingale"):
            Scenario(
                "bad",
                bernoulli_condition(0.3, 0.3),
                depth=10,
                sampler=SAMPLER_MARTINGALE,
            )

    def test_delta_requires_reduced(self):
        with pytest.raises(ValueError, match="reduced"):
            Scenario(
                "bad", bernoulli_condition(0.3, 0.3), depth=10, delta=2
            )

    def test_reduced_needs_room_for_target(self):
        with pytest.raises(ValueError, match="total_length"):
            Scenario(
                "bad",
                semi_synchronous_condition(0.1, 0.01, 0.05),
                depth=10,
                delta=2,
                target_slot=50,
                total_length=20,
            )

    def test_reduced_rejects_ignored_fields(self):
        with pytest.raises(ValueError, match="ignore prefix_model"):
            Scenario(
                "bad",
                semi_synchronous_condition(0.1, 0.01, 0.05),
                depth=10,
                delta=2,
                total_length=100,
                prefix_model=20,
            )
        with pytest.raises(ValueError, match="correlation"):
            Scenario(
                "bad",
                semi_synchronous_condition(0.1, 0.01, 0.05),
                depth=10,
                delta=2,
                total_length=100,
                correlation=0.5,
            )


class TestBatches:
    def test_stationary_batch_shapes(self):
        scenario = get_scenario("iid-settlement", depth=25)
        batch = scenario.sample_batch(100, np.random.default_rng(1))
        assert batch.symbols.shape == (100, 25)
        assert batch.initial_reaches is not None
        assert (batch.start_columns == 0).all()
        assert batch.trials == 100

    def test_finite_prefix_batch(self):
        scenario = get_scenario("iid-finite-prefix")
        batch = scenario.sample_batch(50, np.random.default_rng(2))
        assert batch.symbols.shape == (50, scenario.horizon)
        assert batch.initial_reaches is None
        assert (batch.start_columns == scenario.prefix_model).all()

    def test_reduced_batch_starts_and_lengths(self):
        scenario = get_scenario("delta-synchronous")
        batch = scenario.sample_batch(80, np.random.default_rng(3))
        assert batch.symbols.shape[1] == scenario.total_length
        # reduction only deletes symbols
        assert (batch.lengths <= scenario.total_length).all()
        # starts are -1 (vacuous) or a column inside the reduced string
        assert ((batch.start_columns >= -1)).all()
        live = batch.start_columns >= 0
        assert (batch.start_columns[live] < batch.lengths[live]).all()

    def test_sampling_phases_are_documented_order(self):
        # phase 1: (trials,) reaches, phase 2: (trials, depth) symbols —
        # reproducing the draws by hand must give the same batch
        scenario = get_scenario("iid-settlement", depth=12)
        batch = scenario.sample_batch(40, np.random.default_rng(9))
        generator = np.random.default_rng(9)
        reaches = kernels.sample_initial_reaches(
            scenario.probabilities.epsilon, 40, generator
        )
        symbols = kernels.sample_characteristic_matrix(
            scenario.probabilities, 40, 12, generator
        )
        assert (batch.initial_reaches == reaches).all()
        assert (batch.symbols == symbols).all()

    def test_horizon(self):
        assert get_scenario("iid-settlement", depth=30).horizon == 30
        assert get_scenario("iid-finite-prefix").horizon == 25
        scenario = get_scenario("delta-synchronous")
        assert scenario.horizon == scenario.total_length
        assert scenario.prefix_model == PREFIX_STATIONARY
