"""Equivalence of the batched kernels with the scalar reference layer.

Property-style tests: on random string batches the batched kernels must
agree *exactly* (not statistically) with the scalar implementations in
``repro.core`` / ``repro.delta`` — those are the oracles the paper's
correctness argument was validated against.
"""

import random

import numpy as np
import pytest

from repro.core.catalan import catalan_slots, uniquely_honest_catalan_slots
from repro.core.distributions import (
    SlotProbabilities,
    bernoulli_condition,
    semi_synchronous_condition,
)
from repro.core.margin import margin_sequence, margin_step
from repro.core.reach import reach_sequence, rho
from repro.core.walks import (
    reflected_walk,
    sample_reflected_walk_height,
    sample_reflected_walk_heights,
    stationary_reach_ratio,
)
from repro.delta.reduction import (
    MODE_EMPTY_RUN,
    MODE_QUIET_WINDOW,
    reduce_string,
    reduce_strings,
)
from repro.engine import kernels
from tests.conftest import random_strings


def encode_batch(words):
    return kernels.encode_words(words)


class TestEncoding:
    def test_roundtrip(self):
        words = random_strings("hHA.", 30, 0, 40, seed=1)
        matrix, lengths = kernels.encode_words(words)
        assert kernels.decode_matrix(matrix, lengths) == words

    def test_rejects_bad_symbols(self):
        with pytest.raises(ValueError):
            kernels.encode_word("hHx")

    def test_unknown_symbols_name_the_offenders(self):
        # Unknown ASCII must raise, not flow through the 255 sentinel.
        with pytest.raises(ValueError, match=r"'x'"):
            kernels.encode_word("hHx")
        with pytest.raises(ValueError, match=r"'z'"):
            kernels.encode_words(["hH", "Az"])

    def test_non_ascii_raises_value_error(self):
        # Non-ASCII input must surface as the same ValueError contract,
        # never as a raw UnicodeEncodeError from the codec.
        with pytest.raises(ValueError, match="é"):
            kernels.encode_word("héllo")
        with pytest.raises(ValueError):
            kernels.encode_words(["h", "h☃"])

    def test_empty_word_encodes_to_empty(self):
        assert kernels.encode_word("").shape == (0,)

    def test_padding_is_empty(self):
        matrix, lengths = kernels.encode_words(["hA", "h"])
        assert matrix[1, 1] == kernels.CODE_EMPTY


class TestReachEquivalence:
    def test_matches_reach_sequence(self):
        words = random_strings("hHA", 120, 1, 60, seed=2)
        matrix, lengths = kernels.encode_words(words)
        trajectories = kernels.reach_trajectories(matrix)
        for i, word in enumerate(words):
            expected = reach_sequence(word)
            assert trajectories[i, : len(word) + 1].tolist() == expected

    def test_final_reaches_match_rho(self):
        words = random_strings("hHA", 60, 1, 50, seed=3)
        matrix, lengths = kernels.encode_words(words)
        # padding is a no-op, so the last column is each row's rho
        finals = kernels.final_reaches(matrix)
        for i, word in enumerate(words):
            assert finals[i] == rho(word)

    def test_initial_reach_offsets(self):
        # a reflected walk started at r0 must match the scalar recurrence
        # seeded with r0 (consume the headroom before reflecting)
        words = random_strings("hHA", 40, 1, 30, seed=4)
        matrix, _ = kernels.encode_words(words)
        starts = np.arange(len(words), dtype=np.int64) % 4
        trajectories = kernels.reach_trajectories(matrix, starts)
        for i, word in enumerate(words):
            value = int(starts[i])
            for t, symbol in enumerate(word, start=1):
                if symbol == "A":
                    value += 1
                else:
                    value = max(value - 1, 0)
                assert trajectories[i, t] == value

    def test_empty_symbol_is_noop(self):
        matrix, _ = kernels.encode_words(["A.h", "Ah"])
        a = kernels.reach_trajectories(matrix)
        assert a[0].tolist() == [0, 1, 1, 0]


class TestMarginEquivalence:
    def test_matches_margin_sequence(self):
        words = random_strings("hHA", 80, 1, 50, seed=5)
        rng = random.Random(55)
        for word in words:
            prefix_length = rng.randint(0, len(word))
            matrix, _ = kernels.encode_words([word])
            trajectory = kernels.margin_trajectories(matrix, prefix_length)[0]
            expected = margin_sequence(word, prefix_length)
            assert trajectory[prefix_length:].tolist() == expected

    def test_batched_step_matches_scalar_step(self):
        rng = random.Random(66)
        rhos, mus, symbols = [], [], []
        expected = []
        for _ in range(500):
            r = rng.randint(0, 6)
            m = rng.randint(-5, r)
            s = rng.choice("hHA")
            rhos.append(r)
            mus.append(m)
            symbols.append(s)
            expected.append(margin_step(r, m, s))
        codes = kernels.encode_word("".join(symbols))
        new_rho, new_mu = kernels.batched_margin_step(
            np.array(rhos), np.array(mus), codes
        )
        assert list(zip(new_rho.tolist(), new_mu.tolist())) == expected

    def test_joint_final_states_match_trajectory_tail(self):
        words = random_strings("hHA", 40, 2, 40, seed=6)
        matrix, _ = kernels.encode_words(words)
        starts = np.array([len(w) // 2 for w in words], dtype=np.int64)
        trajectories = kernels.margin_trajectories(matrix, starts)
        _rho, mu = kernels.joint_final_states(matrix, starts)
        assert (trajectories[:, -1] == mu).all()

    def test_initial_reach_seeds_margin(self):
        matrix, _ = kernels.encode_words(["hh"])
        initial = np.array([3], dtype=np.int64)
        trajectory = kernels.margin_trajectories(
            matrix, 0, initial_reaches=initial
        )[0]
        assert trajectory.tolist() == [3, 2, 1]


class TestCatalanEquivalence:
    def test_matches_catalan_slots(self):
        words = random_strings("hHA", 120, 1, 60, seed=7)
        matrix, lengths = kernels.encode_words(words)
        mask = kernels.catalan_slot_mask(matrix)
        for i, word in enumerate(words):
            slots = (np.nonzero(mask[i, : len(word)])[0] + 1).tolist()
            assert slots == catalan_slots(word)

    def test_semi_synchronous_strings(self):
        words = random_strings("hHA.", 60, 1, 50, seed=8)
        matrix, lengths = kernels.encode_words(words)
        mask = kernels.catalan_slot_mask(matrix)
        for i, word in enumerate(words):
            slots = (np.nonzero(mask[i, : len(word)])[0] + 1).tolist()
            assert slots == catalan_slots(word)

    def test_uniquely_honest_mask(self):
        words = random_strings("hHA", 60, 1, 50, seed=9)
        matrix, _ = kernels.encode_words(words)
        mask = kernels.uniquely_honest_catalan_mask(matrix)
        for i, word in enumerate(words):
            slots = (np.nonzero(mask[i, : len(word)])[0] + 1).tolist()
            assert slots == uniquely_honest_catalan_slots(word)

    def test_consecutive_mask(self):
        words = random_strings("hHA", 60, 2, 50, seed=10)
        matrix, _ = kernels.encode_words(words)
        pairs = kernels.consecutive_catalan_mask(matrix)
        for i, word in enumerate(words):
            slots = set(catalan_slots(word))
            expected = sorted(s for s in slots if s + 1 in slots)
            got = (np.nonzero(pairs[i, : len(word) - 1])[0] + 1).tolist()
            assert got == expected


class TestReductionEquivalence:
    def test_mode_constants_mirror_the_canonical_ones(self):
        # kernels can't import these from delta.reduction (package cycle);
        # the literals must stay equal
        assert kernels.MODE_EMPTY_RUN == MODE_EMPTY_RUN
        assert kernels.MODE_QUIET_WINDOW == MODE_QUIET_WINDOW

    @pytest.mark.parametrize("mode", [MODE_EMPTY_RUN, MODE_QUIET_WINDOW])
    @pytest.mark.parametrize("delta", [0, 1, 2, 5])
    def test_matches_reduce_string(self, mode, delta):
        words = random_strings("hHA.", 80, 1, 50, seed=11)
        assert reduce_strings(words, delta, mode) == [
            reduce_string(word, delta, mode) for word in words
        ]

    def test_reduced_slot_columns_match_bijection(self):
        from repro.delta.reduction import slot_bijection

        words = random_strings("hHA.", 40, 5, 40, seed=12)
        matrix, lengths = kernels.encode_words(words)
        target = 3
        columns = kernels.reduced_slot_columns(matrix, target, lengths)
        for i, word in enumerate(words):
            if word[target - 1] == ".":
                assert columns[i] == -1
            else:
                assert columns[i] == slot_bijection(word, 0)[target] - 1

    def test_empty_batch(self):
        assert reduce_strings([], 2) == []


class TestSamplingEquivalence:
    def test_threshold_discipline(self):
        probabilities = semi_synchronous_condition(0.6, 0.1, 0.3)
        generator = np.random.default_rng(13)
        uniforms = generator.random((50, 30))
        codes = kernels.symbols_from_uniforms(probabilities, uniforms)
        t_h, t_bigh, t_adv = kernels.symbol_thresholds(probabilities)
        for i in range(50):
            for j in range(30):
                u = uniforms[i, j]
                if u < t_h:
                    expected = kernels.CODE_UNIQUE
                elif u < t_bigh:
                    expected = kernels.CODE_MULTI
                elif u < t_adv:
                    expected = kernels.CODE_ADVERSARIAL
                else:
                    expected = kernels.CODE_EMPTY
                assert codes[i, j] == expected

    def test_martingale_damping_never_exceeds_iid_adversarial_mass(self):
        probabilities = bernoulli_condition(0.2, 0.3)
        generator = np.random.default_rng(14)
        codes = kernels.sample_martingale_matrix(
            probabilities, 2000, 50, generator, correlation=0.0
        )
        # correlation 0: an adversarial slot is never followed by another
        adv = codes == kernels.CODE_ADVERSARIAL
        assert not (adv[:, :-1] & adv[:, 1:]).any()

    def test_initial_reach_law(self):
        epsilon = 0.3
        beta = stationary_reach_ratio(epsilon)
        generator = np.random.default_rng(15)
        draws = kernels.sample_initial_reaches(epsilon, 200_000, generator)
        for k in (0, 1, 3):
            expected = (1 - beta) * beta**k
            observed = (draws == k).mean()
            assert abs(observed - expected) < 0.01

    def test_reflected_walk_heights_distribution(self):
        # batched closed-form heights vs the scalar per-step sampler
        epsilon, steps = 0.3, 40
        generator = np.random.default_rng(16)
        batched = sample_reflected_walk_heights(epsilon, steps, 20_000, generator)
        rng = random.Random(17)
        scalar = [
            sample_reflected_walk_height(epsilon, steps, rng)
            for _ in range(20_000)
        ]
        assert abs(batched.mean() - np.mean(scalar)) < 0.1

    def test_reflected_walk_closed_form_identity(self):
        # the closed form used by the kernel equals the library's
        # reflected_walk on the induced characteristic string
        generator = np.random.default_rng(18)
        uniforms = generator.random((1, 60))
        p = (1.0 - 0.3) / 2.0
        word = "".join("A" if u < p else "h" for u in uniforms[0])
        heights = kernels.reflected_walk_heights_from_uniforms(0.3, uniforms)
        assert heights[0] == reflected_walk(word)[-1]
