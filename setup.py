"""Setup shim: enables legacy editable installs in offline environments.

The canonical build configuration lives in pyproject.toml; this file exists
because PEP 660 editable installs require the `wheel` package, which may be
absent in air-gapped environments.  `python setup.py develop` works with
setuptools alone.
"""
from setuptools import setup

setup()
