"""E8 — Theorem 7: the Δ-synchronous settlement error.

Sweeps the delay bound Δ for Praos-like parameters (activity f = 0.05)
and reports the reduced honest-majority margin ε′, the Theorem 7 bound,
and a Monte-Carlo violation rate on reduced strings.  Shape assertions:
ε′ shrinks and the bound grows with Δ; the bound dominates the measured
rate; the (1 + Δ)·ε/(1 − ε) additive penalty is visible as a roughly
geometric bound inflation per unit of Δ.
"""

from bench_config import TRIALS
from repro.core.distributions import semi_synchronous_condition
from repro.delta.reduction import reduced_epsilon
from repro.delta.settlement import theorem7_error_bound
from repro.engine import cache_from_env, get_grid, run_grid

ACTIVITY = 0.05
P_ADVERSARIAL = 0.005
P_UNIQUE = 0.04
DELTAS = [0, 2, 4, 8]


def test_delta_sweep_bounds(benchmark):
    probabilities = semi_synchronous_condition(
        ACTIVITY, P_ADVERSARIAL, P_UNIQUE
    )

    def sweep():
        epsilons = [reduced_epsilon(probabilities, d) for d in DELTAS]
        bounds = [
            theorem7_error_bound(probabilities, 600, d) for d in DELTAS
        ]
        return epsilons, bounds

    epsilons, bounds = benchmark(sweep)

    assert epsilons == sorted(epsilons, reverse=True)
    assert bounds == sorted(bounds)
    assert bounds[0] < 0.05  # synchronous-ish: strong guarantee
    benchmark.extra_info["epsilon_prime"] = [f"{e:.4f}" for e in epsilons]
    benchmark.extra_info["theorem7_bound"] = [f"{b:.3E}" for b in bounds]


def test_bound_dominates_measured_rate(benchmark):
    # The registered "delta" sweep grid: the Theorem 7 workload per Δ,
    # orchestrated by the sweep layer; the estimator is the batched
    # (k, Δ)-settlement criterion on reduced strings (exactly
    # repro.delta.settlement.is_k_delta_settled).
    grid = get_grid("delta")
    trials = TRIALS["delta_sweep_rate"]

    rows = benchmark.pedantic(
        run_grid,
        args=(grid,),
        kwargs={"trials": trials, "cache": cache_from_env()},
        rounds=1,
        iterations=1,
    )

    scenario = grid.points()[0].scenario
    for row in rows:
        bound = theorem7_error_bound(
            scenario.probabilities, scenario.depth, row["delta"]
        )
        assert bound >= row["value"] - 0.05, (row, bound)
        benchmark.extra_info[f"delta={row['delta']}"] = (
            f"measured {row['value']:.4f}, bound {bound:.4f}"
        )
