"""E8 — Theorem 7: the Δ-synchronous settlement error.

Sweeps the delay bound Δ for Praos-like parameters (activity f = 0.05)
and reports the reduced honest-majority margin ε′, the Theorem 7 bound,
and a Monte-Carlo violation rate on reduced strings.  Shape assertions:
ε′ shrinks and the bound grows with Δ; the bound dominates the measured
rate; the (1 + Δ)·ε/(1 − ε) additive penalty is visible as a roughly
geometric bound inflation per unit of Δ.
"""

import pytest

from bench_config import SEEDS, TRIALS
from repro.core.distributions import semi_synchronous_condition
from repro.delta.reduction import reduced_epsilon
from repro.delta.settlement import theorem7_error_bound
from repro.engine import ExperimentRunner, get_scenario

ACTIVITY = 0.05
P_ADVERSARIAL = 0.005
P_UNIQUE = 0.04
DELTAS = [0, 2, 4, 8]


def test_delta_sweep_bounds(benchmark):
    probabilities = semi_synchronous_condition(
        ACTIVITY, P_ADVERSARIAL, P_UNIQUE
    )

    def sweep():
        epsilons = [reduced_epsilon(probabilities, d) for d in DELTAS]
        bounds = [
            theorem7_error_bound(probabilities, 600, d) for d in DELTAS
        ]
        return epsilons, bounds

    epsilons, bounds = benchmark(sweep)

    assert epsilons == sorted(epsilons, reverse=True)
    assert bounds == sorted(bounds)
    assert bounds[0] < 0.05  # synchronous-ish: strong guarantee
    benchmark.extra_info["epsilon_prime"] = [f"{e:.4f}" for e in epsilons]
    benchmark.extra_info["theorem7_bound"] = [f"{b:.3E}" for b in bounds]


@pytest.mark.parametrize("delta", [0, 4])
def test_bound_dominates_measured_rate(benchmark, delta):
    # The registered Theorem 7 workload, re-parameterised per Δ; the
    # estimator is the batched (k, Δ)-settlement criterion on reduced
    # strings (exactly repro.delta.settlement.is_k_delta_settled).
    scenario = get_scenario("delta-synchronous", delta=delta)
    probabilities = scenario.probabilities
    runner = ExperimentRunner(scenario)
    trials = TRIALS["delta_sweep_rate"]

    estimate = benchmark.pedantic(
        runner.run,
        args=(trials, SEEDS["delta_sweep_rate"] + delta),
        rounds=1,
        iterations=1,
    )

    bound = theorem7_error_bound(probabilities, scenario.depth, delta)
    assert bound >= estimate.value - 0.05
    benchmark.extra_info["measured_rate"] = f"{estimate.value:.4f}"
    benchmark.extra_info["bound"] = f"{bound:.4f}"
