"""E7 — Theorem 2: consistent tie-breaking rescues the p_h → 0 regime.

Two layers of evidence:

* analytical — as p_h → 0 the Theorem 1 bound (axiom A0) degrades toward
  triviality while the Theorem 2 bound (axiom A0′) is unaffected, with
  the crossover where the paper predicts;
* operational — a protocol-level split attack that exploits multiply
  honest slots causes deep reorganisations under first-arrival
  tie-breaking and collapses under the consistent hash rule.
"""

import pytest

from bench_config import SEEDS, TRIALS
from repro.analysis.bounds import (
    theorem1_settlement_bound,
    theorem2_settlement_bound,
)
from repro.protocol.adversary import SplitAdversary
from repro.protocol.leader import StakeDistribution
from repro.protocol.simulation import Simulation
from repro.protocol.tiebreak import consistent_hash_rule


def test_theorem2_wins_as_unique_mass_vanishes(benchmark):
    epsilon, depth = 0.4, 150

    def compare():
        degraded = [
            theorem1_settlement_bound(epsilon, p_unique, depth)
            for p_unique in (0.2, 0.05, 0.01, 0.002)
        ]
        consistent = theorem2_settlement_bound(epsilon, depth)
        return degraded, consistent

    degraded, consistent = benchmark(compare)

    # Theorem 1's guarantee decays monotonically as p_h vanishes …
    assert degraded == sorted(degraded)
    # … ends up effectively trivial …
    assert degraded[-1] > 0.5
    # … while Theorem 2 stays strong with p_h = 0 outright.
    assert consistent < 0.25
    benchmark.extra_info["theorem1_at_ph"] = [f"{v:.3f}" for v in degraded]
    benchmark.extra_info["theorem2"] = f"{consistent:.3f}"


@pytest.mark.parametrize("rule_name", ["adversarial", "consistent"])
def test_split_attack_under_rule(benchmark, rule_name):
    """Protocol-level ablation; compare max reorg depth across rules."""
    stakes = StakeDistribution.uniform(10, 0)

    def run_attack():
        total_reorg = 0
        violations = 0
        for seed in range(TRIALS["tiebreak_ablation"]):
            kwargs = dict(
                stakes=stakes,
                activity=0.8,  # dense slots: many concurrent honest leaders
                total_slots=70,
                adversary=SplitAdversary(),
                randomness=f"{SEEDS['tiebreak_ablation']}-{seed}",
            )
            if rule_name == "consistent":
                kwargs["tie_break"] = consistent_hash_rule
            result = Simulation(**kwargs).run()
            total_reorg += result.max_reorg_depth()
            violations += result.settlement_violation(5, 10)
        return total_reorg, violations

    total_reorg, _violations = benchmark.pedantic(
        run_attack, rounds=1, iterations=1
    )
    benchmark.extra_info["total_reorg_depth"] = total_reorg
    # consistent rule keeps reorgs trivial; adversarial order does not
    if rule_name == "consistent":
        assert total_reorg <= 6
    else:
        assert total_reorg >= 6
