"""E7 — Theorem 2: consistent tie-breaking rescues the p_h → 0 regime.

Two layers of evidence:

* analytical — as p_h → 0 the Theorem 1 bound (axiom A0) degrades toward
  triviality while the Theorem 2 bound (axiom A0′) is unaffected, with
  the crossover where the paper predicts;
* operational — the registered ``protocol-split`` engine workload: a
  protocol-level split attack exploiting multiply honest slots causes
  deep reorganisations under first-arrival tie-breaking and collapses
  under the consistent hash rule.  The ablation runs through
  :class:`repro.engine.protocol.ProtocolRunner` with the
  ``protocol_deep_reorg`` estimator (reorg ≥ k), the same machinery the
  ``protocol`` sweep grid drives over (stake, activity, Δ, rule).
"""

import pytest

from bench_config import SEEDS, TRIALS
from repro.analysis.bounds import (
    theorem1_settlement_bound,
    theorem2_settlement_bound,
)
from repro.engine.cache import cache_from_env
from repro.engine.protocol import ProtocolRunner, protocol_deep_reorg
from repro.engine.scenarios import get_scenario


def test_theorem2_wins_as_unique_mass_vanishes(benchmark):
    epsilon, depth = 0.4, 150

    def compare():
        degraded = [
            theorem1_settlement_bound(epsilon, p_unique, depth)
            for p_unique in (0.2, 0.05, 0.01, 0.002)
        ]
        consistent = theorem2_settlement_bound(epsilon, depth)
        return degraded, consistent

    degraded, consistent = benchmark(compare)

    # Theorem 1's guarantee decays monotonically as p_h vanishes …
    assert degraded == sorted(degraded)
    # … ends up effectively trivial …
    assert degraded[-1] > 0.5
    # … while Theorem 2 stays strong with p_h = 0 outright.
    assert consistent < 0.25
    benchmark.extra_info["theorem1_at_ph"] = [f"{v:.3f}" for v in degraded]
    benchmark.extra_info["theorem2"] = f"{consistent:.3f}"


@pytest.mark.parametrize("rule_name", ["adversarial", "consistent"])
def test_split_attack_under_rule(benchmark, rule_name):
    """Protocol-level ablation; deep-reorg rate across tie-break rules."""
    scenario = get_scenario("protocol-split", tie_break=rule_name)
    runner = ProtocolRunner(
        scenario, estimator=protocol_deep_reorg, cache=cache_from_env()
    )
    trials = TRIALS["tiebreak_ablation"]

    estimate = benchmark.pedantic(
        runner.run, (trials, SEEDS["tiebreak_ablation"]), rounds=1, iterations=1
    )

    benchmark.extra_info["deep_reorg_rate"] = f"{estimate.value:.3f}"
    # The consistent rule keeps every reorg below the depth-3 bar; the
    # first-arrival rule hands the split adversary deep reorgs in
    # (nearly) every execution.
    if rule_name == "consistent":
        assert estimate.value == 0.0
    else:
        assert estimate.value >= 0.75
