"""E10 — the settlement game at the protocol level (Section 2.2).

Runs the full executable protocol (VRF election, signed blocks, rushing
adversary network) through the engine's protocol workload layer
(:mod:`repro.engine.protocol`): batches of independent ``Simulation``
runs executed by :class:`ProtocolRunner` under the chunked seed-tree
contract, with the private-chain attacker's settlement-violation rate
compared against the exact optimal-adversary probability from the
Section 6.6 DP — the concrete attacker must not exceed the optimum.
The per-run scalar oracle (:func:`run_protocol_scalar`) is asserted
bit-identical to the batched path; ``run_all.py`` records their
throughput ratio in ``BENCH_engine.json``.
"""

import pytest

from bench_config import SEEDS, TRIALS
from repro.analysis.exact import settlement_violation_probability
from repro.core.distributions import SlotProbabilities
from repro.engine.cache import cache_from_env
from repro.engine.protocol import ProtocolRunner, run_protocol_scalar
from repro.engine.scenarios import get_scenario
from repro.protocol.adversary import PrivateChainAdversary
from repro.protocol.leader import (
    StakeDistribution,
    induced_slot_probabilities,
)
from repro.protocol.simulation import Simulation


def synchronous_law(stakes: StakeDistribution, activity: float):
    """The protocol's induced law conditioned on non-empty slots."""
    induced = induced_slot_probabilities(stakes, activity)
    scale = 1.0 / induced.activity
    return SlotProbabilities(
        induced.p_unique * scale,
        induced.p_multi * scale,
        induced.p_adversarial * scale,
    )


def test_honest_throughput(benchmark):
    """The E10 throughput workload: a batch of honest 200-slot runs."""
    scenario = get_scenario("protocol-honest")
    trials = max(TRIALS["protocol_e10_trials"] // 4, 2)
    runner = ProtocolRunner(scenario, cache=cache_from_env())

    estimate = benchmark.pedantic(
        runner.run, (trials, SEEDS["protocol_e10"]), rounds=1, iterations=1
    )

    # Honest synchronous execution never violates settlement.
    assert estimate.value == 0.0
    benchmark.extra_info["slots"] = scenario.total_slots
    benchmark.extra_info["trials"] = trials


def test_private_chain_attack_below_optimum(benchmark):
    scenario = get_scenario("protocol-private-chain")
    runner = ProtocolRunner(scenario, cache=cache_from_env())
    trials = TRIALS["protocol_attack"]

    estimate = benchmark.pedantic(
        runner.run, (trials, SEEDS["protocol_attack"]), rounds=1, iterations=1
    )

    stakes = StakeDistribution.uniform(scenario.honest, scenario.corrupted)
    optimal = settlement_violation_probability(
        synchronous_law(stakes, scenario.activity), scenario.depth
    )
    # a concrete (suboptimal) attacker over few trials: generous MC slack
    assert estimate.value <= min(optimal + 0.40, 1.0)
    benchmark.extra_info["observed_rate"] = f"{estimate.value:.3f}"
    benchmark.extra_info["optimal_adversary"] = f"{optimal:.3f}"


def test_scalar_oracle_bit_identical(benchmark):
    """The per-run reference oracle returns the very same estimate."""
    scenario = get_scenario("protocol-private-chain", total_slots=60)
    trials = 6

    scalar = benchmark.pedantic(
        run_protocol_scalar,
        (scenario, trials, SEEDS["protocol_attack"]),
        rounds=1,
        iterations=1,
    )

    batched = ProtocolRunner(scenario).run(trials, SEEDS["protocol_attack"])
    assert scalar == batched


def test_execution_fork_extraction(benchmark):
    """Converting an adversarial execution into a validated abstract fork."""
    stakes = StakeDistribution.uniform(6, 3)
    simulation = Simulation(
        stakes,
        activity=0.4,
        total_slots=120,
        adversary=PrivateChainAdversary(target_slot=20, hold=6),
        randomness=SEEDS["protocol_fork_extraction"],
    )
    result = simulation.run()

    fork = benchmark(result.execution_fork)

    fork.validate()
    benchmark.extra_info["vertices"] = len(fork.vertices())
