"""E10 — the settlement game at the protocol level (Section 2.2).

Runs the full executable protocol (VRF election, signed blocks, rushing
adversary network) with the private-chain attacker and compares the
observed settlement-violation rate against the exact optimal-adversary
probability from the Section 6.6 DP: the concrete attacker must not
exceed the optimum.  Also benchmarks raw simulator throughput.
"""

import pytest

from bench_config import SEEDS, TRIALS
from repro.analysis.exact import settlement_violation_probability
from repro.core.distributions import SlotProbabilities
from repro.protocol.adversary import NullAdversary, PrivateChainAdversary
from repro.protocol.leader import (
    StakeDistribution,
    induced_slot_probabilities,
)
from repro.protocol.simulation import Simulation


def synchronous_law(stakes: StakeDistribution, activity: float):
    """The protocol's induced law conditioned on non-empty slots."""
    induced = induced_slot_probabilities(stakes, activity)
    scale = 1.0 / induced.activity
    return SlotProbabilities(
        induced.p_unique * scale,
        induced.p_multi * scale,
        induced.p_adversarial * scale,
    )


def test_honest_throughput(benchmark):
    stakes = StakeDistribution.uniform(10, 0)

    def run():
        return Simulation(
            stakes, activity=0.3, total_slots=200, randomness="throughput"
        ).run()

    result = benchmark(run)
    assert not result.settlement_violation(10, 30)
    benchmark.extra_info["slots"] = 200
    benchmark.extra_info["blocks"] = len(result.union_tree().all_blocks())


def test_private_chain_attack_below_optimum(benchmark):
    stakes = StakeDistribution.uniform(6, 4)
    activity = 0.4
    target, depth = 10, 4

    def campaign():
        wins = 0
        trials = TRIALS["protocol_attack"]
        for seed in range(trials):
            simulation = Simulation(
                stakes,
                activity,
                total_slots=90,
                adversary=PrivateChainAdversary(
                    target_slot=target, hold=depth, patience=60
                ),
                randomness=f"{SEEDS['protocol_attack']}-{seed}",
            )
            result = simulation.run()
            if result.settlement_violation(target, depth):
                wins += 1
        return wins / trials

    observed = benchmark.pedantic(campaign, rounds=1, iterations=1)

    optimal = settlement_violation_probability(
        synchronous_law(stakes, activity), depth
    )
    # a concrete (suboptimal) attacker over 15 trials: generous MC slack
    assert observed <= min(optimal + 0.40, 1.0)
    benchmark.extra_info["observed_rate"] = f"{observed:.3f}"
    benchmark.extra_info["optimal_adversary"] = f"{optimal:.3f}"


def test_execution_fork_extraction(benchmark):
    """Converting an adversarial execution into a validated abstract fork."""
    stakes = StakeDistribution.uniform(6, 3)
    simulation = Simulation(
        stakes,
        activity=0.4,
        total_slots=120,
        adversary=PrivateChainAdversary(target_slot=20, hold=6),
        randomness="extract",
    )
    result = simulation.run()

    fork = benchmark(result.execution_fork)

    fork.validate()
    benchmark.extra_info["vertices"] = len(fork.vertices())
