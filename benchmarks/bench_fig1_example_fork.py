"""E2 — Figure 1: the example fork for w = hAhAhHAAH.

Reconstructs the paper's example fork exactly, validates the fork axioms
and the figure's stated properties (three disjoint maximum-length tines,
two concurrent honest vertices at slots 6 and 9, strictly increasing
honest depths), and benchmarks fork construction + validation.
"""

from repro.core.forks import figure_1_fork
from repro.core.reach import max_reach
from repro.core.margin import margin_of_fork


def build_and_validate():
    fork = figure_1_fork()
    fork.validate()
    return fork


def test_figure_1_reconstruction(benchmark):
    fork = benchmark(build_and_validate)

    assert fork.word == "hAhAhHAAH"
    # three disjoint paths of maximum depth (figure caption)
    longest = fork.maximum_length_tines()
    assert len(longest) == 3
    # two honest vertices at slots 6 and 9 (concurrent honest leaders)
    assert len(fork.vertices_with_label(6)) == 2
    assert len(fork.vertices_with_label(9)) == 2
    # honest depths strictly increase (axiom F4 / figure caption)
    labels = sorted(
        {v.label for v in fork.honest_vertices() if v.label > 0}
    )
    depths = [fork.honest_depth(label) for label in labels]
    assert depths == sorted(set(depths))

    benchmark.extra_info["vertices"] = len(fork.vertices())
    benchmark.extra_info["height"] = fork.height
    benchmark.extra_info["max_reach"] = max_reach(fork)
    benchmark.extra_info["margin"] = margin_of_fork(fork, 0)


def test_figure_1_rendering(benchmark):
    fork = figure_1_fork()
    art = benchmark(fork.to_ascii)
    assert "(6)" in art and "(9)" in art and "[8]" in art
