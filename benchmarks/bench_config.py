"""Shared configuration for the benchmark suite.

Every bench takes its RNG seeds and trial counts from here instead of
hard-coded literals, so one edit re-scales or re-seeds the whole suite
(and `run_all.py --quick` can shrink it uniformly via the TRIALS
dictionary).  Seeds are arbitrary but fixed: the suite is deterministic
run-to-run.
"""

#: Per-experiment seeds (one namespace per bench file).  Sweep-driven
#: benches (bounds-vs-exact, delta, table1 Monte Carlo) take their seeds
#: from the registered grids in repro.engine.sweeps instead — the grid
#: seed is part of the result-cache key, so it lives with the grid.
SEEDS = {
    "cp_measured_rate": 77,
    "cp_bivalent_windows": 31,
    "fig4_throughput": 1000,  # per-length offset added by the bench
    "fig4_canonicality": 7,
    # Protocol benches run through the engine's ProtocolRunner since
    # PR 3, so they take integer seeds (the spawned seed-tree contract).
    "protocol_attack": 2024,
    "protocol_fork_extraction": "extract",  # direct Simulation, string seed
    "tiebreak_ablation": 808,
    "engine_scalar_vs_batched": 2020,
    "protocol_e10": 4242,
    # Random (off-grid) settlement-oracle queries; the artifact's own
    # Monte-Carlo seed lives in the OracleSpec (it is part of the
    # artifact fingerprint, so it belongs to the spec, not here).
    "oracle_queries": 6060,
}

#: Per-experiment trial counts.
TRIALS = {
    "bounds_vs_exact_mc": 20000,
    "cp_measured_rate": 600,
    "cp_bivalent_windows": 300,
    "delta_sweep_rate": 250,
    "protocol_attack": 15,
    "tiebreak_ablation": 8,
    # The engine perf baseline (the run_all.py acceptance point):
    "engine_trials": 10000,
    "engine_depth": 200,
    # The protocol-throughput record (E10 workload through the
    # ProtocolRunner vs the per-run scalar oracle):
    "protocol_e10_trials": 16,
    # Per-point trials for the Monte-Carlo sweep grids (bench-sized;
    # the grids' own defaults are the production sizes):
    "table1_mc_sweep": 20000,
    # The settlement-oracle throughput record (E11):
    "oracle_batch_queries": 200000,
    "oracle_single_queries": 2000,
}
