"""E3/E4 — Figures 2 and 3: balanced and x-balanced forks.

Reconstructs both figure forks, checks balance exactly as defined
(Definition 18), and benchmarks the general Fact 6 constructor that
builds (x-)balanced forks from non-negative relative margins.
"""

from repro.core.balanced import (
    build_x_balanced_fork,
    figure_2_fork,
    figure_3_fork,
    is_balanced,
    is_x_balanced,
)
from repro.core.margin import relative_margin


def test_figure_2_balanced_fork(benchmark):
    fork = benchmark(figure_2_fork)
    fork.validate()
    assert fork.word == "hAhAhA"
    assert is_balanced(fork)
    # the two maximal tines split at genesis: slot-1 settlement violation
    assert relative_margin("hAhAhA", 0) >= 0
    benchmark.extra_info["height"] = fork.height


def test_figure_3_x_balanced_fork(benchmark):
    fork = benchmark(figure_3_fork)
    fork.validate()
    assert fork.word == "hhhAhA"
    assert is_x_balanced(fork, 2)
    assert not is_balanced(fork)
    assert relative_margin("hhhAhA", 2) >= 0
    # and the prefix x = hh itself is settled: no balance over it
    assert relative_margin("hhhAhA", 0) < 0
    benchmark.extra_info["height"] = fork.height


def test_general_constructor_matches_figures(benchmark):
    """Fact 6 constructively on both figure strings."""

    def construct():
        return (
            build_x_balanced_fork("hAhAhA", 0),
            build_x_balanced_fork("hhhAhA", 2),
        )

    balanced, x_balanced = benchmark(construct)
    assert balanced is not None and is_x_balanced(balanced, 0)
    assert x_balanced is not None and is_x_balanced(x_balanced, 2)
