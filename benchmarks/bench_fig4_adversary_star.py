"""E5 — Figure 4: the optimal online adversary A*.

Runs A* over long random characteristic strings, verifying Theorem 6
(the produced fork attains ρ(w) and μ_x(y) for every prefix split) on a
sample of splits, and benchmarks the online fork-building throughput.
"""

import random

import pytest

from bench_config import SEEDS
from repro.core.adversary_star import build_canonical_fork
from repro.core.distributions import (
    bernoulli_condition,
    sample_characteristic_string,
)
from repro.core.margin import margin_of_fork, relative_margin
from repro.core.reach import max_reach, rho


@pytest.mark.parametrize("length", [50, 150, 400])
def test_adversary_star_throughput(benchmark, length):
    rng = random.Random(SEEDS["fig4_throughput"] + length)
    probabilities = bernoulli_condition(0.2, 0.3)
    word = sample_characteristic_string(probabilities, length, rng)

    fork = benchmark(build_canonical_fork, word)

    assert max_reach(fork) == rho(word)
    # canonicality spot-checks across the string
    for prefix_length in range(0, length + 1, max(length // 8, 1)):
        assert margin_of_fork(fork, prefix_length) == relative_margin(
            word, prefix_length
        )
    benchmark.extra_info["vertices"] = len(fork.vertices())


def test_adversary_star_attacks_all_slots(benchmark):
    """A single canonical fork witnesses every slot's settlement status."""
    rng = random.Random(SEEDS["fig4_canonicality"])
    probabilities = bernoulli_condition(0.1, 0.2)
    word = sample_characteristic_string(probabilities, 120, rng)

    fork = benchmark(build_canonical_fork, word)

    unsettled = [
        s
        for s in range(1, len(word) + 1)
        if relative_margin(word, s - 1) >= 0
    ]
    for slot in unsettled:
        assert margin_of_fork(fork, slot - 1) >= 0
    benchmark.extra_info["unsettled_slots"] = len(unsettled)
