"""E6 — Theorem 1 / Bound 1: the e^{−k·Ω(min(ε³, ε²p_h))} settlement error.

Sweeps the confirmation depth k and compares three independent numbers:

* the exact optimal-adversary violation probability (Section 6.6 DP),
* the Theorem 1 computable bound (Bound 1 tail with prefix correction),
* a Monte-Carlo estimate of the same probability.

Shape assertions: bound ≥ exact ≈ MC everywhere; both decay
exponentially; the bound's decay rate tracks min(ε³, ε²p_h).
"""



import pytest

from bench_config import TRIALS
from repro.analysis.bounds import (
    theorem1_asymptotic_rate,
    theorem1_settlement_bound,
)
from repro.analysis.exact import compute_settlement_probabilities
from repro.engine import cache_from_env, get_grid, run_grid
from repro.core.distributions import bernoulli_condition

SWEEP_DEPTHS = [20, 40, 80, 160]


@pytest.mark.parametrize("epsilon,p_unique", [(0.4, 0.4), (0.3, 0.1)])
def test_bound_dominates_exact_across_sweep(benchmark, epsilon, p_unique):
    probabilities = bernoulli_condition(epsilon, p_unique)

    def sweep():
        exact = compute_settlement_probabilities(probabilities, SWEEP_DEPTHS)
        bounds = {
            k: theorem1_settlement_bound(epsilon, p_unique, k)
            for k in SWEEP_DEPTHS
        }
        return exact, bounds

    exact, bounds = benchmark(sweep)

    for k in SWEEP_DEPTHS:
        assert bounds[k] >= exact[k], (k, bounds[k], exact[k])
    # exponential decay of the exact probability
    tail = [exact[k] for k in SWEEP_DEPTHS]
    assert all(later < earlier for earlier, later in zip(tail, tail[1:]))
    ratio_1 = exact[40] / exact[20]
    ratio_2 = exact[160] / exact[80]
    assert ratio_2 <= ratio_1 * 1.5  # at least geometric
    benchmark.extra_info["exact"] = {k: f"{exact[k]:.3E}" for k in SWEEP_DEPTHS}
    benchmark.extra_info["bound"] = {k: f"{bounds[k]:.3E}" for k in SWEEP_DEPTHS}


def test_monte_carlo_sits_on_exact(benchmark):
    # The registered "bounds-vs-exact" sweep grid: one MC point per depth
    # the exact DP and Bound 1 are compared on, orchestrated (and, when
    # run_all.py sets $REPRO_SWEEP_CACHE, cached) by the sweep layer.
    grid = get_grid("bounds-vs-exact")
    probabilities = dict(grid.overrides)["probabilities"]
    trials = TRIALS["bounds_vs_exact_mc"]

    rows = benchmark.pedantic(
        run_grid,
        args=(grid,),
        kwargs={"trials": trials, "cache": cache_from_env()},
        rounds=1,
        iterations=1,
    )

    depths = [depth for (_name, values) in grid.axes for depth in values]
    exact = compute_settlement_probabilities(probabilities, depths)
    for row in rows:
        slack = 4 * row["standard_error"] + 1e-12
        assert abs(row["value"] - exact[row["depth"]]) <= slack
    benchmark.extra_info["exact"] = {
        depth: f"{exact[depth]:.4f}" for depth in depths
    }
    benchmark.extra_info["monte_carlo"] = {
        row["depth"]: f"{row['value']:.4f}" for row in rows
    }
    benchmark.extra_info["trials"] = trials


def test_rate_shape_min_of_two_regimes(benchmark):
    """The decay rate behaves like ε³ for ample p_h and like ε²p_h for
    scarce p_h — the paper's headline min(ε³, ε²p_h)."""

    def rates():
        ample = [
            theorem1_asymptotic_rate(eps, (1 + eps) / 2) for eps in (0.2, 0.4)
        ]
        scarce = [
            theorem1_asymptotic_rate(0.4, q) for q in (0.04, 0.02, 0.01)
        ]
        return ample, scarce

    ample, scarce = benchmark(rates)

    # epsilon-cubed regime: rate grows ~8x when epsilon doubles
    assert ample[1] / ample[0] == pytest.approx(8.0, rel=0.6)
    # scarce regime: rate roughly halves with p_h
    assert scarce[0] / scarce[1] == pytest.approx(2.0, rel=0.4)
    assert scarce[1] / scarce[2] == pytest.approx(2.0, rel=0.4)
