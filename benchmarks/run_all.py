"""Run the benchmark suite and record the engine performance baseline.

Ten jobs:

1. measure scalar-vs-batched throughput of the Monte-Carlo estimators
   (the batched-engine acceptance point: >= 10x on
   estimate_settlement_violation at depth 200, 10k trials);
2. measure the protocol workload (engine layer 5): the E10 throughput
   scenario through ProtocolRunner (shared validation + hash-indexed
   predicates) against the per-run scalar oracle run_protocol_scalar
   (reference-mode simulations, chain-walking predicates) — asserted
   bit-identical, floor >= 5x (quick: >= 3x) — plus the worker fan-out
   ratio and a "protocol" sweep-grid pass against the shared cache
   (warm rerun: zero re-estimation);
3. run the "table1" sweep grid through the orchestration layer
   (repro.engine.sweeps) against the on-disk result cache at
   .sweep-cache/, recording wall-clock, cache traffic, and — on a cold
   cache — the parallel-over-serial speedup.  A warm-cache rerun does
   ZERO re-estimation: every point is served from the cache;
4. run the Table-1 grid adaptively against the fixed budget — the
   "adaptive" record: >= 3x fewer total trials at equal-or-better max
   standard error, and a trials bump on the warm chunk ledger must
   re-sample only the new chunks (the prefix property);
5. build the tiny settlement-oracle artifact (adaptive MC cross-check
   through the shared cache), assert an identical rebuild is a no-op,
   and measure both query paths against recomputing the exact DP per
   query (floors: scalar >= 100x the DP, batch >= 50k queries/s) — the
   "oracle" record;
6. load-test every oracle serving mode over localhost — threaded,
   async, and prefork(4) — with concurrent persistent-connection
   clients on the scalar GET and columnar-batch POST paths, recording
   sustained rates and client-observed p50/p99 latency per mode, with
   asserted SLO floors (threaded batch >= 50k queries/s *over the
   wire*, async scalar >= 1.3x threaded, prefork batch >= a
   core-count-scaled multiple of threaded, byte-identical bodies
   across modes, error rate exactly 0, /metrics accounted for the
   load) — the "serving" record;
7. run one fixed workload on every execution backend — serial, process,
   array-namespace, and distributed (two localhost repro.worker
   subprocesses) — assert the four estimates identical, and record
   per-backend chunk throughput, the distributed-over-process overhead
   ratio (floor: >= 0.5x on localhost), and the hot-kernel
   temporaries-audit micro-bench — the "backend" record;
7. measure the continuous-time network layer — raw EventScheduler
   events/s, WAN-transport trials/s against the slot-quantized
   simulator's trials/s (floor: >= 0.5x — physics costs something, but
   not more than half the throughput), and the degenerate-configuration
   bit-identity assert — the "wan" record;
8. resolve the rare-event acceptance cell (alpha = 0.20, fraction 1.0,
   depth 120; exact DP ~8.45e-10, beyond direct MC at any affordable
   budget) by exponential-tilting importance sampling — the
   "rare_event" record: within 6 sigma of the exact DP, and the
   variance-reduction floor — realized IS trials <= 0.1x the direct-MC
   projection (1-p)/(p*rel_se^2);
9. optionally execute the pytest benchmark suite (skipped with
   --perf-only; shrunk with --quick for CI).  The suite inherits the
   cache via $REPRO_SWEEP_CACHE, so its sweep-driven benches also skip
   already-computed points.

All records land in BENCH_engine.json at the repo root.

Usage:
    python benchmarks/run_all.py               # full: perf + sweep + suite
    python benchmarks/run_all.py --quick       # CI-sized subset
    python benchmarks/run_all.py --perf-only   # records only, no suite
    python benchmarks/run_all.py --workers 8   # sweep fan-out width
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_config import SEEDS, TRIALS  # noqa: E402

from repro.analysis.montecarlo import (  # noqa: E402
    estimate_no_unique_catalan_in_window,
    estimate_no_unique_catalan_in_window_scalar,
    estimate_settlement_violation,
    estimate_settlement_violation_scalar,
)
from repro.core.distributions import bernoulli_condition  # noqa: E402
from repro.engine.cache import CACHE_DIR_ENV, ResultCache  # noqa: E402
from repro.engine.protocol import (  # noqa: E402
    ProtocolRunner,
    run_protocol_scalar,
)
from repro.engine.scenarios import get_scenario  # noqa: E402
from repro.engine.sweeps import get_grid, run_grid  # noqa: E402
from repro.analysis.exact import (  # noqa: E402
    settlement_violation_probability,
)
from repro.oracle import (  # noqa: E402
    SettlementOracle,
    TINY_SPEC,
    build_tables,
    effective_probabilities,
)

SWEEP_CACHE_DIR = REPO_ROOT / ".sweep-cache"
ORACLE_ARTIFACT_DIR = REPO_ROOT / ".oracle-tables"


def _time(callable_, *args, **kwargs):
    start = time.perf_counter()
    result = callable_(*args, **kwargs)
    return time.perf_counter() - start, result


def perf_record(quick: bool) -> dict:
    """Scalar-vs-batched throughput of the Monte-Carlo estimators."""
    seed = SEEDS["engine_scalar_vs_batched"]
    depth = TRIALS["engine_depth"]
    trials = TRIALS["engine_trials"] // (10 if quick else 1)
    # Small honest-majority margin: the violation probability at depth 200
    # is still visible, so the recorded value doubles as a sanity check.
    probabilities = bernoulli_condition(0.1, 0.3)

    results = []

    # Warm up allocator / ufunc dispatch so the timed region measures the
    # steady-state throughput the suite actually cares about.
    estimate_settlement_violation(probabilities, depth, 256, seed)
    estimate_no_unique_catalan_in_window(probabilities, 20, 40, 120, 256, seed)

    batched_s, batched = _time(
        estimate_settlement_violation, probabilities, depth, trials, seed
    )
    scalar_s, scalar = _time(
        estimate_settlement_violation_scalar,
        probabilities,
        depth,
        trials,
        seed,
    )
    assert batched == scalar, "batched/scalar estimator pair diverged"
    results.append(
        {
            "estimator": "estimate_settlement_violation",
            "depth": depth,
            "trials": trials,
            "scalar_seconds": round(scalar_s, 4),
            "batched_seconds": round(batched_s, 4),
            "speedup": round(scalar_s / batched_s, 1),
            "value": batched.value,
        }
    )

    window_args = (probabilities, 20, 40, 120, trials, seed)
    batched_s, batched = _time(
        estimate_no_unique_catalan_in_window, *window_args
    )
    scalar_s, scalar = _time(
        estimate_no_unique_catalan_in_window_scalar, *window_args
    )
    assert batched == scalar, "batched/scalar estimator pair diverged"
    results.append(
        {
            "estimator": "estimate_no_unique_catalan_in_window",
            "total_length": 120,
            "trials": trials,
            "scalar_seconds": round(scalar_s, 4),
            "batched_seconds": round(batched_s, 4),
            "speedup": round(scalar_s / batched_s, 1),
            "value": batched.value,
        }
    )
    return {
        "suite": "engine-scalar-vs-batched",
        "quick": quick,
        "python": sys.version.split()[0],
        "results": results,
    }


def protocol_record(quick: bool, workers: int) -> dict:
    """Protocol-throughput record: batched engine vs per-run scalar.

    The E10 throughput workload ("protocol-honest": 10 honest nodes,
    200 synchronous slots) runs once through ProtocolRunner — shared
    validation, hash-indexed consistency predicates, bucketed message
    scheduler — and once through run_protocol_scalar, the per-run
    reference oracle (every node does its own cryptography, predicates
    walk chains recomputing hashes).  Estimates are bit-identical by
    the seed-tree contract; the recorded speedup is the layer-5
    acceptance point.  A workers > 1 pass records the process fan-out
    ratio (≈ 1 on single-core boxes — the record still tracks it).
    """
    scenario = get_scenario("protocol-honest")
    trials = max(TRIALS["protocol_e10_trials"] // (4 if quick else 1), 4)
    seed = SEEDS["protocol_e10"]

    runner = ProtocolRunner(scenario)
    runner.run(2, seed)  # warm-up: allocator, hash machinery, imports

    batched_s, batched = _time(runner.run, trials, seed)
    scalar_s, scalar = _time(run_protocol_scalar, scenario, trials, seed)
    assert batched == scalar, "batched/scalar protocol pair diverged"

    record = {
        "workload": "protocol-honest (E10 throughput)",
        "slots": scenario.total_slots,
        "parties": scenario.parties,
        "trials": trials,
        "scalar_seconds": round(scalar_s, 4),
        "batched_seconds": round(batched_s, 4),
        "speedup": round(scalar_s / batched_s, 1),
        "slots_per_second": round(scenario.total_slots * trials / batched_s),
        "value": batched.value,
    }
    if workers > 1:
        parallel_s, parallel = _time(
            ProtocolRunner(scenario, workers=workers).run, trials, seed
        )
        assert parallel == batched, "worker count changed the estimate"
        record["workers"] = workers
        record["parallel_seconds"] = round(parallel_s, 4)
        record["parallel_speedup"] = round(batched_s / parallel_s, 2)
    return record


def protocol_sweep_record(quick: bool, workers: int) -> dict:
    """The "protocol" grid through run_grid + the shared result cache.

    Same contract as the table1 sweep record: cold points are estimated
    (fanned across workers when > 1), a warm rerun is served entirely
    from disk — zero re-execution of any simulation batch.
    """
    grid = get_grid("protocol")
    trials = max(grid.trials // (4 if quick else 1), 4)
    cache = ResultCache(SWEEP_CACHE_DIR)

    wall_s, rows = _time(
        run_grid, grid, trials=trials, workers=workers, cache=cache
    )
    misses = sum(1 for row in rows if not row["cached"])
    record = {
        "grid": grid.name,
        "points": len(rows),
        "trials_per_point": trials,
        "workers": workers,
        "wall_seconds": round(wall_s, 4),
        "cache_hits": len(rows) - misses,
        "cache_misses": misses,
    }
    if misses == 0:
        record["note"] = "warm cache: zero re-estimation"
    return record


def sweep_record(quick: bool, workers: int) -> dict:
    """Orchestrated-sweep wall-clock and cache traffic (the PR 2 point).

    Runs the "table1" grid through the sweep layer with the persistent
    cache.  Cold cache: every point is estimated (in parallel when
    ``workers > 1``), then a serial uncached pass measures the baseline
    and the speedup is recorded.  Warm cache: zero re-estimation — the
    grid is served entirely from disk and only that fact is recorded.
    """
    grid = get_grid("table1")
    trials = grid.trials // (10 if quick else 1)
    cache = ResultCache(SWEEP_CACHE_DIR)

    wall_s, rows = _time(
        run_grid, grid, trials=trials, workers=workers, cache=cache
    )
    misses = sum(1 for row in rows if not row["cached"])
    record = {
        "grid": grid.name,
        "points": len(rows),
        "trials_per_point": trials,
        "workers": workers,
        "wall_seconds": round(wall_s, 4),
        "cache_hits": len(rows) - misses,
        "cache_misses": misses,
    }
    if misses == 0:
        record["note"] = "warm cache: zero re-estimation"
    elif misses < len(rows):
        # Partially warm: wall-clock covers only the missed points, so
        # no serial baseline or speedup would be comparable.
        record["note"] = "partially warm cache: speedup not comparable"
    elif workers == 1:
        # The timed run *was* a full serial pass; nothing to compare.
        record["serial_seconds"] = record["wall_seconds"]
    else:
        # Fully cold parallel run: a serial uncached pass gives the
        # like-for-like baseline the speedup is recorded against.
        serial_s, _ = _time(run_grid, grid, trials=trials, workers=1)
        record["serial_seconds"] = round(serial_s, 4)
        record["parallel_speedup"] = round(serial_s / wall_s, 2)
    return record


def adaptive_record(quick: bool, workers: int) -> dict:
    """Adaptive precision targeting vs the fixed budget (the PR 5 point).

    Runs the Table-1 grid twice over a fresh chunk ledger: once with
    the fixed per-point budget, once adaptively with ``target_se`` set
    to the fixed run's *worst* standard error.  The adaptive run must
    reach equal-or-better max standard error while spending >= 3x fewer
    total trials (easy cells stop after their first waves; only the
    rare/hard cells run deep) — asserted by main().  A trials bump on
    the warm ledger is then asserted to re-sample only the new chunks:
    every old full chunk is served from the ledger bit-identically.

    The ledger lives in a throwaway directory (not .sweep-cache) so the
    cold-run arithmetic is deterministic even when the shared cache is
    already warm from an earlier invocation.
    """
    grid = dataclasses.replace(
        get_grid("table1"), name="table1-adaptive", chunk_size=256
    )
    trials = grid.trials // (10 if quick else 1)

    with tempfile.TemporaryDirectory(prefix="repro-ledger-") as ledger_dir:
        cache = ResultCache(ledger_dir)
        fixed_s, fixed = _time(
            run_grid, grid, trials=trials, workers=workers, cache=cache
        )
        target_se = max(row["standard_error"] for row in fixed)
        adaptive_s, adaptive = _time(
            run_grid,
            grid,
            trials=trials,
            workers=workers,
            cache=cache,
            target_se=target_se,
        )
        fixed_total = sum(row["trials"] for row in fixed)
        adaptive_total = sum(row["trials"] for row in adaptive)
        adaptive_max_se = max(row["standard_error"] for row in adaptive)
        # The adaptive pass ran over the fixed run's warm ledger, so its
        # chunk waves were served without sampling wherever they overlap.
        adaptive_sampled = sum(row["sampled_trials"] for row in adaptive)

        # Warm-ledger extension: bump the fixed budget and check that
        # only the new chunks are sampled (the prefix property).
        bump_cache = ResultCache(ledger_dir)
        bump_trials = 2 * trials
        _, bumped = _time(
            run_grid,
            grid,
            trials=bump_trials,
            workers=workers,
            cache=bump_cache,
        )
        old_full = (trials // grid.chunk_size) * grid.chunk_size
        extension_ok = all(
            row["reused_trials"] >= old_full
            and row["sampled_trials"] <= bump_trials - old_full
            for row in bumped
        )

    return {
        "grid": grid.name,
        "points": len(fixed),
        "chunk_size": grid.chunk_size,
        "fixed_trials_per_point": trials,
        "fixed_total_trials": fixed_total,
        "fixed_seconds": round(fixed_s, 4),
        "target_se": target_se,
        "adaptive_total_trials": adaptive_total,
        "adaptive_seconds": round(adaptive_s, 4),
        "adaptive_max_se": adaptive_max_se,
        "adaptive_sampled_trials": adaptive_sampled,
        "trials_ratio": round(fixed_total / adaptive_total, 2),
        "se_no_worse": adaptive_max_se <= target_se,
        "warm_extension_resamples_only_new_chunks": extension_ok,
    }


def oracle_record(quick: bool, workers: int) -> dict:
    """The settlement-oracle record (E11): build, no-op rebuild, QPS.

    Builds the tiny-preset artifact (the Monte-Carlo cross-check runs
    through run_grid against the shared .sweep-cache, so a warm rerun
    re-checks without re-estimating), asserts an identical rebuild is a
    manifest-level no-op, then measures the two query paths against the
    cost of recomputing the exact DP per query.  Floors — scalar ≥ 100x
    the DP, batch ≥ 50k queries/s — are asserted by main().
    """
    import numpy as np

    from bench_oracle_throughput import (
        BATCH_QUERIES,
        QUERY_SEED,
        SINGLE_QUERIES,
        random_queries,
    )

    cache = ResultCache(SWEEP_CACHE_DIR)
    build_s, report = _time(
        build_tables,
        TINY_SPEC,
        out_dir=ORACLE_ARTIFACT_DIR,
        workers=workers,
        cache=cache,
    )
    rebuild_s, rerun = _time(
        build_tables, TINY_SPEC, out_dir=ORACLE_ARTIFACT_DIR, cache=cache
    )
    assert not rerun.rebuilt, "identical rebuild was not a no-op"

    oracle = SettlementOracle.load(ORACLE_ARTIFACT_DIR)
    spec = oracle.spec
    rng = np.random.default_rng(QUERY_SEED)
    alphas, fractions, deltas, depths = random_queries(
        spec, SINGLE_QUERIES, rng
    )

    def single_queries():
        for index in range(SINGLE_QUERIES):
            oracle.violation_probability(
                alphas[index], fractions[index], deltas[index], depths[index]
            )

    single_queries()  # warm-up
    single_s, _ = _time(single_queries)
    oracle_per_query = single_s / SINGLE_QUERIES

    dp_samples = list(spec.combos())[:5]
    dp_s, _ = _time(
        lambda: [
            settlement_violation_probability(
                effective_probabilities(
                    alpha, fraction, delta, spec.activity
                ),
                spec.depth_horizon,
            )
            for _, _, _, alpha, fraction, delta in dp_samples
        ]
    )
    dp_per_query = dp_s / len(dp_samples)

    columns = random_queries(spec, BATCH_QUERIES, rng)
    oracle.violation_probabilities(*columns)  # warm-up
    batch_s, _ = _time(oracle.violation_probabilities, *columns)

    record = {
        "artifact": str(ORACLE_ARTIFACT_DIR.name),
        "cells": int(oracle.tables.forward.size),
        "build_seconds": round(build_s, 4),
        "rebuild_seconds": round(rebuild_s, 4),
        "rebuild_noop": not rerun.rebuilt,
        "mc_points": report.mc_points,
        "mc_cached": report.mc_cached,
        "dp_per_query_seconds": round(dp_per_query, 6),
        "single_query_microseconds": round(oracle_per_query * 1e6, 2),
        "per_query_speedup": round(dp_per_query / oracle_per_query, 1),
        "batch_queries": BATCH_QUERIES,
        "batch_seconds": round(batch_s, 4),
        "batch_queries_per_second": round(BATCH_QUERIES / batch_s),
    }
    if report.mc_points and report.mc_cached == report.mc_points:
        record["note"] = "warm cache: zero re-estimation"
    return record


def wan_record(quick: bool) -> dict:
    """The continuous-time network record (the PR 7 point).

    Three measurements:

    * raw :class:`~repro.protocol.events.EventScheduler` throughput —
      schedule + drain of a large synthetic workload, in events/s;
    * WAN-vs-slot simulator throughput: the E10 workload once over the
      slot-quantized NetworkModel and once over the Transport with the
      full WAN feature set enabled (ring relays, bandwidth, uniform
      jitter).  ``wan_over_slot_ratio`` is asserted >= 0.5 by main():
      continuous-time physics may cost something, but never half the
      simulator;
    * the degenerate-configuration assert: the *same* E10 workload with
      ``network="wan"`` and default transport fields must produce a
      bit-identical estimate to the slot model — the degenerate-case
      guarantee, re-checked where the numbers are recorded.

    A delay-distribution sample from one WAN run rides along so the
    record documents what the new observable looks like.
    """
    from repro.protocol.events import EventScheduler

    scenario = get_scenario("protocol-honest")
    trials = max(TRIALS["protocol_e10_trials"] // (4 if quick else 1), 4)
    seed = SEEDS["protocol_e10"]

    # 1. Scheduler micro-bench: interleaved schedule/drain in slot-sized
    # windows (the transport's actual access pattern).
    events = 20_000 if quick else 100_000
    scheduler = EventScheduler()

    def scheduler_workload():
        drained = 0
        for i in range(events):
            scheduler.schedule(float(i % 97) + (i % 7) / 8, i)
            if i % 64 == 63:
                drained += len(scheduler.pop_until(float(i % 97)))
        drained += len(scheduler.pop_until(200.0))
        return drained

    scheduler_s, drained = _time(scheduler_workload)
    assert drained == events, "scheduler lost events under the bench load"

    # 2. Slot-vs-WAN simulator throughput on the E10 workload.
    wan_scenario = get_scenario(
        "protocol-honest",
        network="wan",
        latency=0.4,
        bandwidth=4096.0,
        jitter="uniform",
        jitter_scale=0.5,
        topology="ring",
    )
    slot_runner = ProtocolRunner(scenario)
    wan_runner = ProtocolRunner(wan_scenario)
    slot_runner.run(2, seed)  # warm-up
    wan_runner.run(2, seed)
    slot_s, slot_estimate = _time(slot_runner.run, trials, seed)
    wan_s, wan_estimate = _time(wan_runner.run, trials, seed)

    # 3. Degenerate configuration: wan + all-default transport fields
    # must reproduce the slot estimate bit-exactly.
    degenerate = ProtocolRunner(
        get_scenario("protocol-honest", network="wan")
    ).run(trials, seed)
    degenerate_ok = degenerate == slot_estimate

    sample = wan_scenario.build_simulation(f"protocol-{seed}").run()
    distribution = sample.delay_distribution()

    return {
        "scheduler_events": events,
        "scheduler_seconds": round(scheduler_s, 4),
        "scheduler_events_per_second": round(events / scheduler_s),
        "workload": wan_scenario.name,
        "trials": trials,
        "slot_seconds": round(slot_s, 4),
        "slot_trials_per_second": round(trials / slot_s, 2),
        "wan_seconds": round(wan_s, 4),
        "wan_trials_per_second": round(trials / wan_s, 2),
        "wan_over_slot_ratio": round(slot_s / wan_s, 3),
        "degenerate_bit_identical": degenerate_ok,
        "wan_value": wan_estimate.value,
        "delay_distribution": {
            "count": distribution.count,
            "mean": round(distribution.mean, 4),
            "p50": round(distribution.p50, 4),
            "p90": round(distribution.p90, 4),
            "p99": round(distribution.p99, 4),
            "max": round(distribution.maximum, 4),
            "delta": distribution.delta,
            "exceedance_rate": round(distribution.exceedance_rate, 4),
        },
    }


def rare_event_record(quick: bool) -> dict:
    """The rare-event record (E12, the PR 8 point).

    The acceptance cell — alpha = 0.20, fully unique honest slots,
    depth 120 — has exact violation probability ~8.45e-10: resolving it
    to 30% relative error by direct Monte Carlo would take ~3e10
    trials.  The record runs the exponential-tilting IS estimator
    adaptively (relative-SE target with a trial ceiling), cross-checks
    against the exact DP (within 6 sigma, asserted by main()), and
    records the variance-reduction floor: realized IS trials must be
    <= 0.1x the direct-MC projection (measured: ~6 orders of magnitude
    under it).  The warm chunk ledger makes a rerun free — the same
    property the CI rare-event-smoke job asserts through the module's
    CLI.
    """
    import dataclasses as dc

    from repro.analysis.rare_event import (
        direct_mc_projection,
        settlement_is_estimate,
    )
    from repro.core.distributions import from_adversarial_stake

    alpha, fraction, depth = 0.20, 1.0, 120
    rel_se = 0.3 if quick else 0.25
    max_trials = 100_000 if quick else 200_000
    seed = SEEDS.get("rare_event", 7)

    law = from_adversarial_stake(alpha, fraction)
    scenario = dc.replace(
        get_scenario("iid-settlement", depth=depth), probabilities=law
    )
    exact_s, exact = _time(settlement_violation_probability, law, depth)
    is_s, estimate = _time(
        settlement_is_estimate,
        scenario,
        seed,
        rel_se=rel_se,
        max_trials=max_trials,
    )
    relative = (
        estimate.standard_error / estimate.value
        if estimate.value > 0
        else float("inf")
    )
    projection = direct_mc_projection(exact, rel_se)
    return {
        "cell": {"alpha": alpha, "unique_fraction": fraction, "depth": depth},
        "exact_dp": exact,
        "exact_dp_seconds": round(exact_s, 4),
        "is_estimate": estimate.value,
        "is_standard_error": estimate.standard_error,
        "is_relative_se": round(relative, 4),
        "is_trials": estimate.trials,
        "is_seconds": round(is_s, 4),
        "rel_se_target": rel_se,
        "direct_mc_projection_trials": round(projection),
        "variance_reduction": round(projection / estimate.trials, 1),
        "within_6_sigma": (
            abs(estimate.value - exact) <= 6.0 * estimate.standard_error
        ),
        "trials_under_floor": estimate.trials <= 0.1 * projection,
    }


def _spawn_worker(env: dict) -> tuple[subprocess.Popen, str]:
    """Start one ``python -m repro.worker`` subprocess; (proc, host:port)."""
    import re

    process = subprocess.Popen(
        [sys.executable, "-m", "repro.worker", "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = process.stdout.readline()
    match = re.match(r"listening on ([\d.]+):(\d+)", line)
    if not match:
        process.terminate()
        raise RuntimeError(f"worker did not announce its port: {line!r}")
    return process, f"{match.group(1)}:{match.group(2)}"


def backend_record(quick: bool) -> dict:
    """Chunks/s of one fixed workload on every execution backend.

    Runs the same ``(scenario, estimator, trials, seed)`` workload on
    the serial, process (2 workers), array (NumPy namespace), and
    distributed (2 localhost ``repro.worker`` subprocesses) backends,
    asserts all four estimates identical — the backend choice is purely
    a wall-clock knob — and records per-backend chunk throughput plus
    ``distributed_overhead_ratio`` (distributed over process chunks/s;
    main() enforces the >= 0.5x localhost floor).  Worker/pool startup
    runs before the timed region: the record measures steady-state
    dispatch overhead, not interpreter boot.

    The record also carries the hot-kernel micro-bench backing the
    temporaries audit: per-call milliseconds of the settlement pipeline
    stages after the in-place/rewrite pass (`prefix_sum_matrix` writing
    through a column view with `out=`-accumulated cumsum,
    `final_reaches` reduced to row min/max without materializing the
    trajectory matrix, single-comparison honest masks, and the
    reflected walk dropping its `(n, T+1)` floor matrix).
    """
    from repro.engine.distributed import DistributedBackend
    from repro.engine.parallel import ProcessBackend, SerialBackend
    from repro.engine.array_backend import ArrayBackend
    from repro.engine.runner import ExperimentRunner
    from repro.engine import kernels
    import numpy as np

    scenario = get_scenario("stake-sweep/alpha=0.3/frac=1")
    chunk_size = 4096
    trials = chunk_size * (8 if quick else 32)
    seed = SEEDS["engine_scalar_vs_batched"]
    chunks = trials // chunk_size
    runner = ExperimentRunner(scenario, chunk_size=chunk_size)

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )

    workers = []
    estimates = {}
    backends = {}
    try:
        worker_hosts = []
        for _ in range(2):
            process, address = _spawn_worker(env)
            workers.append(process)
            worker_hosts.append(address)

        def timed(name, backend):
            with backend:
                runner.run(chunk_size, seed=seed, backend=backend)  # warm
                seconds, estimate = _time(
                    runner.run, trials, seed=seed, backend=backend
                )
            estimates[name] = estimate
            backends[name] = {
                "seconds": round(seconds, 4),
                "chunks_per_second": round(chunks / seconds, 2),
            }

        timed("serial", SerialBackend())
        timed("process", ProcessBackend(2))
        timed("array", ArrayBackend())
        timed(
            "distributed",
            DistributedBackend.from_spec(",".join(worker_hosts)),
        )
    finally:
        for process in workers:
            process.terminate()
        for process in workers:
            process.wait(timeout=10)

    reference = estimates["serial"]
    identical = all(value == reference for value in estimates.values())
    assert identical, f"backend changed the estimate: {estimates}"

    # Hot-kernel micro-bench (the temporaries-audit numbers): one
    # settlement pipeline pass on a fixed matrix, per-stage timings.
    rng = np.random.default_rng(seed)
    uniforms = rng.random((chunk_size, 256))
    symbols = kernels.symbols_from_uniforms(scenario.probabilities, uniforms)
    for _ in range(2):  # warm ufunc/allocator
        kernels.final_reaches(symbols)
    sums_s, _sums = _time(kernels.prefix_sum_matrix, symbols)
    final_s, _ = _time(kernels.final_reaches, symbols)
    walk_s, _ = _time(
        kernels.reflected_walk_heights_from_uniforms, 0.1, uniforms
    )
    kernel_bench = {
        "matrix_shape": list(symbols.shape),
        "prefix_sum_matrix_ms": round(sums_s * 1e3, 3),
        "final_reaches_ms": round(final_s * 1e3, 3),
        "reflected_walk_ms": round(walk_s * 1e3, 3),
    }

    return {
        "workload": scenario.name,
        "trials": trials,
        "chunk_size": chunk_size,
        "chunks": chunks,
        "identical_estimates": identical,
        "backends": backends,
        "distributed_overhead_ratio": round(
            backends["distributed"]["chunks_per_second"]
            / backends["process"]["chunks_per_second"],
            3,
        ),
        "kernels": kernel_bench,
        "temporaries_audit": (
            "prefix_sum_matrix fills a [:, 1:] view and accumulates with "
            "out=; final_reaches/reflected walk reduce to per-row "
            "min/max without trajectory or floor matrices; honest masks "
            "are one comparison (codes < CODE_ADVERSARIAL); no float64 "
            "round-trips outside the uniform draws themselves"
        ),
    }


def run_bench_suite(quick: bool) -> int:
    """Execute the pytest benchmark files (assertion mode, timings off)."""
    # bench_*.py does not match pytest's default python_files pattern, so
    # the files must be selected explicitly.
    selection = (
        ["bench_table1_settlement.py::test_table1_block_sweep",
         "bench_table1_settlement.py::test_table1_monte_carlo_grid",
         "bench_fig1_example_fork.py",
         "bench_fig2_fig3_balanced.py",
         "bench_oracle_throughput.py"]
        if quick
        else sorted(
            p.name
            for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")
            if p.name != "bench_config.py"
        )
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        "--benchmark-disable",
        "-p",
        "no:cacheprovider",
        *selection,
    ]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    # Opt the sweep-driven benches into the shared result cache: a rerun
    # of the suite re-asserts every claim without re-estimating points.
    env.setdefault(CACHE_DIR_ENV, str(SWEEP_CACHE_DIR))
    return subprocess.call(command, cwd=REPO_ROOT / "benchmarks", env=env)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--perf-only",
        action="store_true",
        help="skip the pytest suite, only write the perf record",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for the orchestrated sweep record",
    )
    args = parser.parse_args()

    from bench_oracle_serving import serving_record

    record = perf_record(args.quick)
    record["protocol"] = protocol_record(args.quick, args.workers)
    record["protocol_sweep"] = protocol_sweep_record(args.quick, args.workers)
    record["sweep"] = sweep_record(args.quick, args.workers)
    record["adaptive"] = adaptive_record(args.quick, args.workers)
    record["oracle"] = oracle_record(args.quick, args.workers)
    record["serving"] = serving_record(args.quick)
    record["backend"] = backend_record(args.quick)
    record["wan"] = wan_record(args.quick)
    record["rare_event"] = rare_event_record(args.quick)
    out = REPO_ROOT / "BENCH_engine.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    for entry in record["results"]:
        print(
            f"{entry['estimator']}: scalar {entry['scalar_seconds']}s, "
            f"batched {entry['batched_seconds']}s -> "
            f"{entry['speedup']}x (identical estimates)"
        )
    protocol = record["protocol"]
    parallel_note = (
        f", {protocol['workers']}-worker fan-out "
        f"{protocol['parallel_speedup']}x"
        if "parallel_speedup" in protocol
        else ""
    )
    print(
        f"protocol '{protocol['workload']}': scalar "
        f"{protocol['scalar_seconds']}s, batched "
        f"{protocol['batched_seconds']}s -> {protocol['speedup']}x, "
        f"{protocol['slots_per_second']} slots/s (identical estimates"
        f"{parallel_note})"
    )
    for sweep, label in (
        (record["protocol_sweep"], "protocol sweep"),
        (record["sweep"], "sweep"),
    ):
        if "parallel_speedup" in sweep:
            detail = f", parallel speedup {sweep['parallel_speedup']}x"
        elif "note" in sweep:
            detail = f" -- {sweep['note']}"
        else:
            detail = ""
        print(
            f"{label} '{sweep['grid']}': {sweep['points']} points in "
            f"{sweep['wall_seconds']}s (workers={sweep['workers']}, "
            f"{sweep['cache_hits']} cached, {sweep['cache_misses']} estimated"
            f"{detail})"
        )
    adaptive = record["adaptive"]
    print(
        f"adaptive '{adaptive['grid']}': fixed "
        f"{adaptive['fixed_total_trials']} trials vs adaptive "
        f"{adaptive['adaptive_total_trials']} "
        f"({adaptive['trials_ratio']}x fewer) at max SE "
        f"{adaptive['adaptive_max_se']:.2g} <= target "
        f"{adaptive['target_se']:.2g}; warm trials bump re-sampled "
        f"{'only new' if adaptive['warm_extension_resamples_only_new_chunks'] else 'OLD'}"
        " chunks"
    )
    oracle = record["oracle"]
    print(
        f"oracle '{oracle['artifact']}': {oracle['cells']} cells built in "
        f"{oracle['build_seconds']}s, rebuild "
        f"{'no-op' if oracle['rebuild_noop'] else 'RE-RAN'} in "
        f"{oracle['rebuild_seconds']}s; single query "
        f"{oracle['single_query_microseconds']}us "
        f"({oracle['per_query_speedup']}x over the DP), batch "
        f"{oracle['batch_queries_per_second']} queries/s"
    )
    serving = record["serving"]
    for mode, entry in serving["modes"].items():
        print(
            f"serving[{mode}]: scalar "
            f"{entry['scalar']['requests_per_second']} req/s "
            f"(p50 {entry['scalar']['p50_ms']}ms, "
            f"p99 {entry['scalar']['p99_ms']}ms), batch "
            f"{entry['batch']['queries_per_second']} queries/s over HTTP "
            f"(p50 {entry['batch']['p50_ms']}ms, "
            f"p99 {entry['batch']['p99_ms']}ms)"
        )
    print(
        f"serving: async scalar speedup {serving['async_scalar_speedup']}x, "
        f"prefork4 batch speedup {serving['prefork_batch_speedup']}x "
        f"({serving['cpu_count']} cores), batch-encode speedup "
        f"{serving['batch_encode']['speedup']}x, byte parity "
        f"{serving['answers_identical_across_modes']}, error rate "
        f"{serving['error_rate']}"
    )
    backend = record["backend"]
    throughput = ", ".join(
        f"{name} {entry['chunks_per_second']} chunks/s"
        for name, entry in backend["backends"].items()
    )
    print(
        f"backend '{backend['workload']}': {throughput} "
        f"(identical estimates, distributed/process "
        f"{backend['distributed_overhead_ratio']}x)"
    )
    wan = record["wan"]
    print(
        f"wan '{wan['workload']}': scheduler "
        f"{wan['scheduler_events_per_second']} events/s; slot "
        f"{wan['slot_trials_per_second']} vs wan "
        f"{wan['wan_trials_per_second']} trials/s "
        f"({wan['wan_over_slot_ratio']}x); degenerate config "
        f"{'bit-identical' if wan['degenerate_bit_identical'] else 'DIVERGED'}"
        f"; delay p99 {wan['delay_distribution']['p99']} slots, "
        f"Delta-exceedance {wan['delay_distribution']['exceedance_rate']}"
    )
    rare = record["rare_event"]
    print(
        f"rare_event alpha={rare['cell']['alpha']} "
        f"depth={rare['cell']['depth']}: exact DP {rare['exact_dp']:.3e}, "
        f"IS {rare['is_estimate']:.3e} "
        f"(rel. SE {rare['is_relative_se']}, {rare['is_trials']} trials "
        f"vs ~{rare['direct_mc_projection_trials']:.1e} direct-MC "
        f"projection -> {rare['variance_reduction']}x variance reduction)"
    )
    print(f"perf record written to {out}")

    # Quick mode times 10x fewer trials, so its measurements are noisier;
    # enforce a looser floor there rather than none at all.
    floor = 5 if args.quick else 10
    settlement = record["results"][0]
    if settlement["speedup"] < floor:
        print(
            f"FAIL: batched settlement estimator below the {floor}x floor "
            f"({settlement['speedup']}x)",
            file=sys.stderr,
        )
        return 1
    protocol_floor = 3 if args.quick else 5
    if protocol["speedup"] < protocol_floor:
        print(
            f"FAIL: batched protocol execution below the "
            f"{protocol_floor}x floor ({protocol['speedup']}x)",
            file=sys.stderr,
        )
        return 1
    if adaptive["trials_ratio"] < 3:
        print(
            "FAIL: adaptive runs below the 3x trial-savings floor "
            f"({adaptive['trials_ratio']}x at equal-or-better max SE)",
            file=sys.stderr,
        )
        return 1
    if not adaptive["se_no_worse"]:
        print(
            "FAIL: adaptive max standard error exceeds the fixed run's "
            f"({adaptive['adaptive_max_se']} > {adaptive['target_se']})",
            file=sys.stderr,
        )
        return 1
    if not adaptive["warm_extension_resamples_only_new_chunks"]:
        print(
            "FAIL: warm-ledger trials bump re-sampled previously "
            "ledgered chunks",
            file=sys.stderr,
        )
        return 1
    if not oracle["rebuild_noop"]:
        print(
            "FAIL: identical oracle rebuild re-ran instead of no-op",
            file=sys.stderr,
        )
        return 1
    if oracle["per_query_speedup"] < 100:
        print(
            "FAIL: oracle scalar query below the 100x-over-DP floor "
            f"({oracle['per_query_speedup']}x)",
            file=sys.stderr,
        )
        return 1
    if oracle["batch_queries_per_second"] < 50_000:
        print(
            "FAIL: oracle batch path below the 50k queries/s floor "
            f"({oracle['batch_queries_per_second']}/s)",
            file=sys.stderr,
        )
        return 1
    if serving["batch"]["queries_per_second"] < 50_000:
        print(
            "FAIL: oracle serving batch path below the 50k queries/s "
            f"over-HTTP floor ({serving['batch']['queries_per_second']}/s)",
            file=sys.stderr,
        )
        return 1
    if serving["async_scalar_speedup"] < serving["slo"][
        "async_scalar_speedup_floor"
    ]:
        print(
            "FAIL: async serving scalar path below its speedup floor "
            f"({serving['async_scalar_speedup']}x vs "
            f"{serving['slo']['async_scalar_speedup_floor']}x of threaded)",
            file=sys.stderr,
        )
        return 1
    if serving["prefork_batch_speedup"] < serving["slo"][
        "prefork_batch_speedup_floor"
    ]:
        print(
            "FAIL: prefork serving batch path below its speedup floor "
            f"({serving['prefork_batch_speedup']}x vs "
            f"{serving['slo']['prefork_batch_speedup_floor']}x of threaded "
            f"on {serving['cpu_count']} cores)",
            file=sys.stderr,
        )
        return 1
    if not serving["answers_identical_across_modes"]:
        print(
            "FAIL: serving modes returned different bytes on the golden "
            "request set",
            file=sys.stderr,
        )
        return 1
    if serving["error_rate"] > 0:
        print(
            "FAIL: oracle serving returned errors under load "
            f"(error rate {serving['error_rate']})",
            file=sys.stderr,
        )
        return 1
    if not serving["metrics_endpoint_counted_load"]:
        print(
            "FAIL: /metrics did not account for the serving load",
            file=sys.stderr,
        )
        return 1
    if not backend["identical_estimates"]:
        print("FAIL: a backend changed the estimate", file=sys.stderr)
        return 1
    if backend["distributed_overhead_ratio"] < 0.5:
        print(
            "FAIL: distributed backend below the 0.5x-of-process "
            f"localhost floor ({backend['distributed_overhead_ratio']}x)",
            file=sys.stderr,
        )
        return 1
    if not wan["degenerate_bit_identical"]:
        print(
            "FAIL: default-config Transport diverged from the "
            "slot-quantized model",
            file=sys.stderr,
        )
        return 1
    if wan["wan_over_slot_ratio"] < 0.5:
        print(
            "FAIL: WAN transport below the 0.5x-of-slot-simulator "
            f"throughput floor ({wan['wan_over_slot_ratio']}x)",
            file=sys.stderr,
        )
        return 1
    if (
        wan["scheduler_events_per_second"]
        < wan["slot_trials_per_second"] * 0.5
    ):
        print(
            "FAIL: event scheduler slower than half the slot simulator's "
            f"trial rate ({wan['scheduler_events_per_second']} events/s)",
            file=sys.stderr,
        )
        return 1

    if not rare["within_6_sigma"]:
        print(
            "FAIL: rare-event IS estimate more than 6 sigma from the "
            f"exact DP ({rare['is_estimate']} vs {rare['exact_dp']})",
            file=sys.stderr,
        )
        return 1
    if not rare["trials_under_floor"]:
        print(
            "FAIL: rare-event IS below the variance-reduction floor "
            f"({rare['is_trials']} trials > 0.1x the "
            f"{rare['direct_mc_projection_trials']}-trial projection)",
            file=sys.stderr,
        )
        return 1

    if args.perf_only:
        return 0
    return run_bench_suite(args.quick)


if __name__ == "__main__":
    raise SystemExit(main())
