"""Over-the-wire SLO bench: the oracle HTTP server under concurrent load.

``bench_oracle_throughput.py`` measures the oracle's *in-process* query
paths; this module measures what a deployment actually gets: the stdlib
``ThreadingHTTPServer`` answering real HTTP/1.1 requests on localhost,
with concurrent persistent-connection clients on both query shapes:

* **scalar** — ``GET /v1/violation?...`` one query per request, the
  latency-sensitive interactive path;
* **batch** — ``POST /v1/violation`` with columnar arrays, the
  throughput path (one NumPy gather answers the whole body).

The recorded ``serving`` SLOs (asserted here and by ``run_all.py``):

* batch path sustains >= 50 000 queries/second *over the wire* on
  localhost — the same floor the in-process path carries, i.e. HTTP
  framing must not eat the batch advantage;
* error rate is exactly 0 across every request of the run;
* client-observed p50/p99 latencies are recorded for both shapes (no
  floor — they document the artifact, the floors above gate it).

The artifact is the tiny preset with the Monte-Carlo cross-check
disabled (the bench exercises serving, not building) in a throwaway
directory.  The server's own ``/metrics`` endpoint is scraped at the
end and must have counted every request the clients sent — the
telemetry pipeline is load-tested together with the data path.
"""

import dataclasses
import json
import pathlib
import sys
import threading
import time
from http.client import HTTPConnection

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.oracle import (  # noqa: E402
    SettlementOracle,
    TINY_SPEC,
    build_tables,
)
from repro.oracle.server import make_server  # noqa: E402

#: The serving artifact: tiny grid, no MC cross-check (pure DP build).
SERVING_SPEC = dataclasses.replace(
    TINY_SPEC, mc_trials=0, mc_depths=(), mc_target_se=0.0
)

QUERY_SEED = 20200707
BATCH_HTTP_FLOOR = 50_000.0  # queries/s over localhost HTTP
ERROR_RATE_MAX = 0.0


def _percentile_ms(latencies: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a sorted latency sample, in ms."""
    index = max(
        0, min(len(latencies) - 1, round(fraction * (len(latencies) - 1)))
    )
    return round(1e3 * latencies[index], 3)


def _in_hull_queries(spec, count: int, rng: np.random.Generator):
    """Columnar random queries inside the table's conservative hull."""
    return (
        rng.uniform(spec.alphas[0], spec.alphas[-1], count),
        rng.uniform(
            spec.unique_fractions[0], spec.unique_fractions[-1], count
        ),
        rng.uniform(spec.deltas[0], spec.deltas[-1], count),
        rng.uniform(spec.depths[0], spec.depths[-1], count),
    )


def _drive(address, clients: int, requester) -> dict:
    """Fan ``requester(connection, client_index)`` across ``clients``
    persistent connections; aggregate latencies and errors.

    ``requester`` returns ``(latencies, errors)`` for its connection.
    The wall clock covers barrier release to last client done — the
    sustained-rate denominator, not per-client sums.
    """
    host, port = address
    results: list[tuple[list[float], int]] = [None] * clients
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        connection = HTTPConnection(host, port, timeout=60)
        try:
            barrier.wait()
            results[index] = requester(connection, index)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    latencies = sorted(
        latency for sample, _ in results for latency in sample
    )
    errors = sum(errors for _, errors in results)
    return {
        "clients": clients,
        "requests": len(latencies) + errors,
        "seconds": round(wall, 4),
        "p50_ms": _percentile_ms(latencies, 0.50),
        "p99_ms": _percentile_ms(latencies, 0.99),
        "errors": errors,
        "_wall": wall,
    }


def serving_record(quick: bool) -> dict:
    """Build, serve, and load-test the oracle; the ``serving`` record."""
    import tempfile

    clients = 2 if quick else 4
    scalar_requests = 150 if quick else 500  # per client
    batch_requests = 15 if quick else 40  # per client
    batch_size = 1_000 if quick else 2_000  # queries per POST

    with tempfile.TemporaryDirectory(prefix="repro-serving-") as directory:
        build_tables(SERVING_SPEC, out_dir=directory)
        oracle = SettlementOracle.load(directory)
        server = make_server(oracle, port=0)
        address = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            spec = oracle.spec
            rng = np.random.default_rng(QUERY_SEED)

            def scalar_requester(connection, index):
                queries = _in_hull_queries(spec, scalar_requests, rng)
                latencies, errors = [], 0
                for alpha, fraction, delta, depth in zip(*queries):
                    path = (
                        f"/v1/violation?alpha={alpha}"
                        f"&unique_fraction={fraction}"
                        f"&delta={delta}&depth={depth}"
                    )
                    started = time.perf_counter()
                    connection.request("GET", path)
                    response = connection.getresponse()
                    body = response.read()
                    latencies.append(time.perf_counter() - started)
                    if (
                        response.status != 200
                        or "violation_probability" not in json.loads(body)
                    ):
                        errors += 1
                        latencies.pop()
                return latencies, errors

            def batch_requester(connection, index):
                alphas, fractions, deltas, depths = _in_hull_queries(
                    spec, batch_size, rng
                )
                payload = json.dumps(
                    {
                        "alpha": alphas.tolist(),
                        "unique_fraction": fractions.tolist(),
                        "delta": deltas.tolist(),
                        "depth": depths.tolist(),
                    }
                ).encode()
                headers = {"Content-Type": "application/json"}
                latencies, errors = [], 0
                for _ in range(batch_requests):
                    started = time.perf_counter()
                    connection.request(
                        "POST", "/v1/violation", payload, headers
                    )
                    response = connection.getresponse()
                    body = response.read()
                    latencies.append(time.perf_counter() - started)
                    if response.status != 200 or len(
                        json.loads(body)["violation_probability"]
                    ) != batch_size:
                        errors += 1
                        latencies.pop()
                return latencies, errors

            scalar = _drive(address, clients, scalar_requester)
            batch = _drive(address, clients, batch_requester)

            # The server's own telemetry must have counted the load.
            probe = HTTPConnection(*address, timeout=60)
            try:
                probe.request("GET", "/metrics")
                response = probe.getresponse()
                exposition = response.read().decode()
                metrics_ok = (
                    response.status == 200
                    and "repro_oracle_requests_total" in exposition
                    and "repro_oracle_request_seconds_bucket" in exposition
                )
            finally:
                probe.close()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    scalar["requests_per_second"] = round(
        scalar["requests"] / scalar.pop("_wall"), 1
    )
    batch_queries = batch["requests"] * batch_size
    batch["batch_size"] = batch_size
    batch["queries"] = batch_queries
    batch["queries_per_second"] = round(
        batch_queries / batch.pop("_wall"), 1
    )

    total_requests = scalar["requests"] + batch["requests"]
    total_errors = scalar["errors"] + batch["errors"]
    record = {
        "artifact_cells": int(oracle.tables.forward.size),
        "quick": quick,
        "scalar": scalar,
        "batch": batch,
        "error_rate": total_errors / total_requests,
        "metrics_endpoint_counted_load": metrics_ok,
        "slo": {
            "batch_queries_per_second_floor": BATCH_HTTP_FLOOR,
            "error_rate_max": ERROR_RATE_MAX,
        },
    }
    record["slo"]["met"] = (
        batch["queries_per_second"] >= BATCH_HTTP_FLOOR
        and record["error_rate"] <= ERROR_RATE_MAX
        and metrics_ok
    )
    return record


def test_serving_meets_slo_floors():
    """The pytest entry the full bench suite collects."""
    record = serving_record(quick=True)
    assert record["error_rate"] == 0.0, record
    assert record["batch"]["queries_per_second"] >= BATCH_HTTP_FLOOR, record
    assert record["metrics_endpoint_counted_load"], record
    assert record["slo"]["met"]


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_engine.json"),
        help="merge the serving record into this JSON file",
    )
    args = parser.parse_args()

    record = serving_record(args.quick)
    out = pathlib.Path(args.out)
    merged = json.loads(out.read_text()) if out.exists() else {}
    merged["serving"] = record
    out.write_text(json.dumps(merged, indent=2) + "\n")
    print(
        f"serving: scalar {record['scalar']['requests_per_second']} req/s "
        f"(p50 {record['scalar']['p50_ms']}ms, "
        f"p99 {record['scalar']['p99_ms']}ms), batch "
        f"{record['batch']['queries_per_second']} queries/s "
        f"(p50 {record['batch']['p50_ms']}ms, "
        f"p99 {record['batch']['p99_ms']}ms), error rate "
        f"{record['error_rate']}; record merged into {out}"
    )
    if not record["slo"]["met"]:
        print(
            "FAIL: serving SLO floors not met "
            f"(batch {record['batch']['queries_per_second']} q/s vs "
            f"{BATCH_HTTP_FLOOR} floor, error rate "
            f"{record['error_rate']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
