"""Over-the-wire SLO bench: every oracle serving mode under load.

``bench_oracle_throughput.py`` measures the oracle's *in-process* query
paths; this module measures what a deployment actually gets: real
HTTP/1.1 requests on localhost, with concurrent persistent-connection
clients on both query shapes, swept across the serving tier's modes:

* **threaded** — the classic ``ThreadingHTTPServer`` (one thread per
  connection, stdlib ``BaseHTTPRequestHandler`` parsing);
* **async** — the single-threaded asyncio event loop with the
  hand-rolled HTTP/1.1 parser and keep-alive pipelining;
* **prefork4** — four forked worker processes (async transport)
  sharing one listening socket, the scale-out mode.

Per mode, both shapes are driven:

* **scalar** — ``GET /v1/violation?...`` one query per request, the
  latency-sensitive interactive path;
* **batch** — ``POST /v1/violation`` with columnar arrays, the
  throughput path (one NumPy gather answers the whole body).

Recorded SLO floors (asserted here and by ``run_all.py``):

* threaded batch sustains >= 50 000 queries/second over the wire —
  the historical floor; HTTP framing must not eat the batch advantage;
* async scalar >= 1.3x threaded scalar — the hand-rolled parser must
  actually out-run ``BaseHTTPRequestHandler``'s email-module parsing
  (a single-core property, asserted everywhere);
* prefork4 batch >= factor x threaded batch, where the factor scales
  with the cores the host actually has: 2.0 with >= 4 cores (the CI
  shape), 1.2 with 2-3, and 0.5 on a single core (four processes on
  one core can only add fork overhead — the floor then only guards
  against pathological collapse; ``cpu_count`` is recorded so readers
  can see which regime produced the number);
* error rate is exactly 0 across every request of the run;
* a golden query set (successes *and* errors) returns byte-identical
  bodies from every mode — the serving tier's parity contract;
* the ``/metrics`` endpoint counted the load it served.

Also recorded: the batch-encode micro-benchmark — ``ndarray.tolist()``
+ one ``json.dumps`` against the per-element ``float()`` loop it
replaced in the batch route, on a 2 000-wide batch.

The artifact is the tiny preset with the Monte-Carlo cross-check
disabled (the bench exercises serving, not building) in a throwaway
directory.
"""

import dataclasses
import json
import multiprocessing
import os
import pathlib
import sys
import threading
import time
from http.client import HTTPConnection

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.oracle import (  # noqa: E402
    SettlementOracle,
    TINY_SPEC,
    build_tables,
)
from repro.oracle.aioserver import AsyncHTTPServer  # noqa: E402
from repro.oracle.app import OracleApp  # noqa: E402
from repro.oracle.server import (  # noqa: E402
    make_listening_socket,
    make_server,
)

#: The serving artifact: tiny grid, no MC cross-check (pure DP build).
SERVING_SPEC = dataclasses.replace(
    TINY_SPEC, mc_trials=0, mc_depths=(), mc_target_se=0.0
)

QUERY_SEED = 20200707
BATCH_HTTP_FLOOR = 50_000.0  # queries/s over localhost HTTP (threaded)
ASYNC_SCALAR_SPEEDUP_FLOOR = 1.3  # vs threaded scalar, any core count
ERROR_RATE_MAX = 0.0
PREFORK_WORKERS = 4


def prefork_speedup_floor(cpu_count: int | None) -> float:
    """The prefork4-vs-threaded batch floor for this host's cores.

    Four workers need four cores to prove a 2x win; on smaller hosts
    the floor degrades honestly (same policy as the distributed
    backend's bench) rather than asserting physically impossible
    parallelism: 1.2x with 2-3 cores, and on a single core only a
    guard against collapse (0.5x — fork + scheduling overhead).
    """
    cores = cpu_count or 1
    if cores >= 4:
        return 2.0
    if cores >= 2:
        return 1.2
    return 0.5


def _percentile_ms(latencies: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a sorted latency sample, in ms."""
    index = max(
        0, min(len(latencies) - 1, round(fraction * (len(latencies) - 1)))
    )
    return round(1e3 * latencies[index], 3)


def _in_hull_queries(spec, count: int, rng: np.random.Generator):
    """Columnar random queries inside the table's conservative hull."""
    return (
        rng.uniform(spec.alphas[0], spec.alphas[-1], count),
        rng.uniform(
            spec.unique_fractions[0], spec.unique_fractions[-1], count
        ),
        rng.uniform(spec.deltas[0], spec.deltas[-1], count),
        rng.uniform(spec.depths[0], spec.depths[-1], count),
    )


def _drive(address, clients: int, requester) -> dict:
    """Fan ``requester(connection, client_index)`` across ``clients``
    persistent connections; aggregate latencies and errors.

    ``requester`` returns ``(latencies, errors)`` for its connection.
    The wall clock covers barrier release to last client done — the
    sustained-rate denominator, not per-client sums.
    """
    host, port = address
    results: list[tuple[list[float], int]] = [None] * clients
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        connection = HTTPConnection(host, port, timeout=60)
        try:
            barrier.wait()
            results[index] = requester(connection, index)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    latencies = sorted(
        latency for sample, _ in results for latency in sample
    )
    errors = sum(errors for _, errors in results)
    return {
        "clients": clients,
        "requests": len(latencies) + errors,
        "seconds": round(wall, 4),
        "p50_ms": _percentile_ms(latencies, 0.50),
        "p99_ms": _percentile_ms(latencies, 0.99),
        "errors": errors,
        "_wall": wall,
    }


# ----------------------------------------------------------------------
# Booting the modes
# ----------------------------------------------------------------------


def _prefork_worker(directory: str, sock, index: int) -> None:
    worker_oracle = SettlementOracle.load(directory)
    app = OracleApp(worker_oracle, worker_label=str(index))
    AsyncHTTPServer(app, sock=sock).run()


def _wait_ready(address, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            probe = HTTPConnection(*address, timeout=5)
            probe.request("GET", "/healthz")
            if probe.getresponse().status == 200:
                probe.close()
                return
        except OSError:
            time.sleep(0.05)
    raise RuntimeError(f"serving mode at {address} never became ready")


def _boot(mode: str, directory: str, oracle):
    """Start one serving mode; returns ``(address, stop)``."""
    if mode == "threaded":
        server = make_server(oracle, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()

        def stop():
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

        return server.server_address[:2], stop
    if mode == "async":
        server = AsyncHTTPServer(OracleApp(oracle)).start()
        return tuple(server.server_address[:2]), server.shutdown
    assert mode == "prefork4"
    sock = make_listening_socket()
    address = sock.getsockname()[:2]
    context = multiprocessing.get_context("fork")
    workers = [
        context.Process(
            target=_prefork_worker,
            args=(directory, sock, index),
            daemon=True,
        )
        for index in range(PREFORK_WORKERS)
    ]
    for worker in workers:
        worker.start()
    sock.close()
    _wait_ready(address)

    def stop():
        for worker in workers:
            worker.terminate()
        for worker in workers:
            worker.join(timeout=10)

    return address, stop


# ----------------------------------------------------------------------
# Parity + encode micro-bench
# ----------------------------------------------------------------------

_PARITY_REQUESTS = (
    ("GET", "/healthz", None),
    ("GET", "/v1/violation?alpha=0.13&unique_fraction=0.83&delta=1&depth=7", None),
    ("GET", "/v1/depth?alpha=0.1&unique_fraction=1.0&delta=0&target=0.1", None),
    ("GET", "/v1/violation?alpha=0.49&unique_fraction=1.0&delta=0&depth=10", None),
    ("GET", "/v1/violation?alpha=0.1", None),
    ("GET", "/v2/nothing", None),
    (
        "POST",
        "/v1/violation",
        {
            "alpha": [0.1, 0.2, 0.13],
            "unique_fraction": [1.0, 0.5, 0.8],
            "delta": [0, 2, 1],
            "depth": [5, 10, 7],
        },
    ),
    ("POST", "/v1/violation", {"alpha": [0.1], "strict": "oops"}),
)


def _mode_transcript(address) -> list:
    transcript = []
    for method, target, payload in _PARITY_REQUESTS:
        connection = HTTPConnection(*address, timeout=60)
        try:
            body = (
                json.dumps(payload).encode() if payload is not None else None
            )
            connection.request(
                method,
                target,
                body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = connection.getresponse()
            transcript.append((response.status, response.read()))
        finally:
            connection.close()
    return transcript


def _batch_encode_record(batch_size: int = 2_000) -> dict:
    """The batch-route encode micro-benchmark: per-element ``float()``
    conversion (the replaced code) vs ``ndarray.tolist()``."""
    values = np.random.default_rng(QUERY_SEED).uniform(0, 1, batch_size)
    repeats = 50

    start = time.perf_counter()
    for _ in range(repeats):
        json.dumps({"violation_probability": [float(v) for v in values]})
    per_element = (time.perf_counter() - start) / repeats

    start = time.perf_counter()
    for _ in range(repeats):
        json.dumps({"violation_probability": values.tolist()})
    tolist = (time.perf_counter() - start) / repeats

    return {
        "batch_size": batch_size,
        "per_element_ms": round(per_element * 1e3, 4),
        "tolist_ms": round(tolist * 1e3, 4),
        "speedup": round(per_element / tolist, 2),
    }


# ----------------------------------------------------------------------
# The record
# ----------------------------------------------------------------------


def serving_record(quick: bool) -> dict:
    """Build, serve, and load-test every mode; the ``serving`` record."""
    import tempfile

    clients = 2 if quick else 4
    scalar_requests = 150 if quick else 500  # per client
    batch_requests = 15 if quick else 40  # per client
    batch_size = 1_000 if quick else 2_000  # queries per POST

    rng = np.random.default_rng(QUERY_SEED)

    with tempfile.TemporaryDirectory(prefix="repro-serving-") as directory:
        build_tables(SERVING_SPEC, out_dir=directory)
        oracle = SettlementOracle.load(directory)
        spec = oracle.spec

        # Pre-generate per-client query sets (the generator is not
        # thread-safe; the drive threads only read).
        scalar_queries = [
            list(zip(*_in_hull_queries(spec, scalar_requests, rng)))
            for _ in range(clients)
        ]
        batch_payloads = []
        for _ in range(clients):
            alphas, fractions, deltas, depths = _in_hull_queries(
                spec, batch_size, rng
            )
            batch_payloads.append(
                json.dumps(
                    {
                        "alpha": alphas.tolist(),
                        "unique_fraction": fractions.tolist(),
                        "delta": deltas.tolist(),
                        "depth": depths.tolist(),
                    }
                ).encode()
            )

        def scalar_requester(connection, index):
            latencies, errors = [], 0
            for alpha, fraction, delta, depth in scalar_queries[index]:
                path = (
                    f"/v1/violation?alpha={alpha}"
                    f"&unique_fraction={fraction}"
                    f"&delta={delta}&depth={depth}"
                )
                started = time.perf_counter()
                connection.request("GET", path)
                response = connection.getresponse()
                body = response.read()
                latencies.append(time.perf_counter() - started)
                if (
                    response.status != 200
                    or "violation_probability" not in json.loads(body)
                ):
                    errors += 1
                    latencies.pop()
            return latencies, errors

        def batch_requester(connection, index):
            payload = batch_payloads[index]
            headers = {"Content-Type": "application/json"}
            latencies, errors = [], 0
            for _ in range(batch_requests):
                started = time.perf_counter()
                connection.request("POST", "/v1/violation", payload, headers)
                response = connection.getresponse()
                body = response.read()
                latencies.append(time.perf_counter() - started)
                if response.status != 200 or len(
                    json.loads(body)["violation_probability"]
                ) != batch_size:
                    errors += 1
                    latencies.pop()
            return latencies, errors

        modes = {}
        transcripts = {}
        metrics_ok = False
        for mode in ("threaded", "async", "prefork4"):
            address, stop = _boot(mode, directory, oracle)
            try:
                scalar = _drive(address, clients, scalar_requester)
                batch = _drive(address, clients, batch_requester)
                transcripts[mode] = _mode_transcript(address)
                if mode == "threaded":
                    # The server's telemetry must have counted the load.
                    probe = HTTPConnection(*address, timeout=60)
                    try:
                        probe.request("GET", "/metrics")
                        response = probe.getresponse()
                        exposition = response.read().decode()
                        metrics_ok = (
                            response.status == 200
                            and "repro_oracle_requests_total" in exposition
                            and "repro_oracle_request_seconds_bucket"
                            in exposition
                        )
                    finally:
                        probe.close()
            finally:
                stop()
            scalar["requests_per_second"] = round(
                scalar["requests"] / scalar.pop("_wall"), 1
            )
            batch_queries = batch["requests"] * batch_size
            batch["batch_size"] = batch_size
            batch["queries"] = batch_queries
            batch["queries_per_second"] = round(
                batch_queries / batch.pop("_wall"), 1
            )
            entry = {"scalar": scalar, "batch": batch}
            if mode == "prefork4":
                entry["workers"] = PREFORK_WORKERS
            modes[mode] = entry

    threaded = modes["threaded"]
    answers_identical = all(
        transcripts[mode] == transcripts["threaded"]
        for mode in ("async", "prefork4")
    )
    async_speedup = round(
        modes["async"]["scalar"]["requests_per_second"]
        / threaded["scalar"]["requests_per_second"],
        2,
    )
    prefork_speedup = round(
        modes["prefork4"]["batch"]["queries_per_second"]
        / threaded["batch"]["queries_per_second"],
        2,
    )
    cpu_count = os.cpu_count()
    prefork_floor = prefork_speedup_floor(cpu_count)

    total_requests = sum(
        entry[shape]["requests"]
        for entry in modes.values()
        for shape in ("scalar", "batch")
    )
    total_errors = sum(
        entry[shape]["errors"]
        for entry in modes.values()
        for shape in ("scalar", "batch")
    )
    record = {
        "artifact_cells": int(oracle.tables.forward.size),
        "quick": quick,
        "cpu_count": cpu_count,
        # Historical top-level rows == the threaded mode (kept so older
        # readers of BENCH_engine.json keep working).
        "scalar": threaded["scalar"],
        "batch": threaded["batch"],
        "modes": modes,
        "async_scalar_speedup": async_speedup,
        "prefork_batch_speedup": prefork_speedup,
        "answers_identical_across_modes": answers_identical,
        "batch_encode": _batch_encode_record(),
        "error_rate": total_errors / total_requests,
        "metrics_endpoint_counted_load": metrics_ok,
        "slo": {
            "batch_queries_per_second_floor": BATCH_HTTP_FLOOR,
            "async_scalar_speedup_floor": ASYNC_SCALAR_SPEEDUP_FLOOR,
            "prefork_batch_speedup_floor": prefork_floor,
            "error_rate_max": ERROR_RATE_MAX,
        },
    }
    record["slo"]["met"] = (
        threaded["batch"]["queries_per_second"] >= BATCH_HTTP_FLOOR
        and async_speedup >= ASYNC_SCALAR_SPEEDUP_FLOOR
        and prefork_speedup >= prefork_floor
        and record["error_rate"] <= ERROR_RATE_MAX
        and answers_identical
        and metrics_ok
    )
    return record


def test_serving_meets_slo_floors():
    """The pytest entry the full bench suite collects."""
    record = serving_record(quick=True)
    assert record["error_rate"] == 0.0, record
    assert record["batch"]["queries_per_second"] >= BATCH_HTTP_FLOOR, record
    assert (
        record["async_scalar_speedup"] >= ASYNC_SCALAR_SPEEDUP_FLOOR
    ), record
    assert record["prefork_batch_speedup"] >= (
        record["slo"]["prefork_batch_speedup_floor"]
    ), record
    assert record["answers_identical_across_modes"], record
    assert record["metrics_endpoint_counted_load"], record
    assert record["batch_encode"]["speedup"] > 1.0, record
    assert record["slo"]["met"]


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_engine.json"),
        help="merge the serving record into this JSON file",
    )
    args = parser.parse_args()

    record = serving_record(args.quick)
    out = pathlib.Path(args.out)
    merged = json.loads(out.read_text()) if out.exists() else {}
    merged["serving"] = record
    out.write_text(json.dumps(merged, indent=2) + "\n")
    for mode, entry in record["modes"].items():
        print(
            f"serving[{mode}]: scalar "
            f"{entry['scalar']['requests_per_second']} req/s "
            f"(p50 {entry['scalar']['p50_ms']}ms, "
            f"p99 {entry['scalar']['p99_ms']}ms), batch "
            f"{entry['batch']['queries_per_second']} queries/s "
            f"(p50 {entry['batch']['p50_ms']}ms, "
            f"p99 {entry['batch']['p99_ms']}ms)"
        )
    print(
        f"serving: async scalar speedup {record['async_scalar_speedup']}x "
        f"(floor {ASYNC_SCALAR_SPEEDUP_FLOOR}), prefork4 batch speedup "
        f"{record['prefork_batch_speedup']}x (floor "
        f"{record['slo']['prefork_batch_speedup_floor']}, "
        f"{record['cpu_count']} cores), batch encode speedup "
        f"{record['batch_encode']['speedup']}x, parity "
        f"{record['answers_identical_across_modes']}, error rate "
        f"{record['error_rate']}; record merged into {out}"
    )
    if not record["slo"]["met"]:
        print(
            "FAIL: serving SLO floors not met "
            f"(threaded batch {record['batch']['queries_per_second']} q/s "
            f"vs {BATCH_HTTP_FLOOR} floor, async scalar speedup "
            f"{record['async_scalar_speedup']} vs "
            f"{ASYNC_SCALAR_SPEEDUP_FLOOR}, prefork batch speedup "
            f"{record['prefork_batch_speedup']} vs "
            f"{record['slo']['prefork_batch_speedup_floor']}, error rate "
            f"{record['error_rate']}, parity "
            f"{record['answers_identical_across_modes']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
