"""E11 — the settlement oracle: exactness, conservatism, throughput.

The oracle's whole claim is that precomputation moves settlement
queries from DP-speed to memory-speed without giving up safety.  Four
checks:

* **exact at grid points** — every tabulated cell answers bit-identical
  to ``settlement_violation_probability`` on the cell's effective law;
* **conservative between grid points** — on a spot-check set of
  off-grid queries, the oracle's answer dominates the exact DP value
  computed directly at the query coordinates;
* **no-op rebuild** — rebuilding the artifact from an identical spec
  loads the manifest and touches neither the DP nor the Monte-Carlo
  estimator (and a forced rebuild against the warm result cache does
  zero re-estimation);
* **throughput floors** — a single scalar query beats recomputing the
  DP by ≥ 100× and the vectorized batch path answers ≥ 50 000
  queries/second (the same floors ``run_all.py`` asserts when writing
  the ``oracle`` record to BENCH_engine.json).
"""

import time

import numpy as np
import pytest

from bench_config import SEEDS, TRIALS
from repro.analysis.exact import settlement_violation_probability
from repro.engine import cache_from_env
from repro.oracle import (
    SettlementOracle,
    TINY_SPEC,
    build_tables,
    effective_probabilities,
)

#: Random off-grid query generator shared with run_all.py's record.
QUERY_SEED = SEEDS["oracle_queries"]
BATCH_QUERIES = TRIALS["oracle_batch_queries"]
SINGLE_QUERIES = TRIALS["oracle_single_queries"]
DP_SAMPLES = 5
PER_QUERY_FLOOR = 100.0
BATCH_FLOOR = 50_000.0


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    directory = tmp_path_factory.mktemp("oracle") / "tables"
    report = build_tables(
        TINY_SPEC, out_dir=directory, cache=cache_from_env()
    )
    return directory, report


@pytest.fixture(scope="module")
def oracle(artifact):
    directory, _ = artifact
    return SettlementOracle.load(directory)


def random_queries(spec, count: int, rng: np.random.Generator):
    """Columnar random queries inside the table's conservative hull."""
    alphas = rng.uniform(spec.alphas[0], spec.alphas[-1], count)
    fractions = rng.uniform(
        spec.unique_fractions[0], spec.unique_fractions[-1], count
    )
    deltas = rng.uniform(spec.deltas[0], spec.deltas[-1], count)
    depths = rng.uniform(spec.depths[0], spec.depths[-1], count)
    return alphas, fractions, deltas, depths


def test_exact_at_every_grid_point(oracle):
    spec = oracle.spec
    for i, j, l, alpha, fraction, delta in spec.combos():
        law = effective_probabilities(alpha, fraction, delta, spec.activity)
        for k in spec.depths:
            assert oracle.violation_probability(alpha, fraction, delta, k) == (
                settlement_violation_probability(law, k)
            )


def test_conservative_on_random_off_grid_queries(oracle):
    spec = oracle.spec
    rng = np.random.default_rng(QUERY_SEED)
    alphas, fractions, deltas, depths = random_queries(spec, 25, rng)
    deltas = np.round(deltas).astype(int)
    depths = np.floor(depths).astype(int)
    answers = oracle.violation_probabilities(alphas, fractions, deltas, depths)
    for alpha, fraction, delta, depth, answer in zip(
        alphas, fractions, deltas, depths, answers
    ):
        law = effective_probabilities(
            float(alpha), float(fraction), int(delta), spec.activity
        )
        exact = settlement_violation_probability(law, int(depth))
        assert answer >= exact * (1.0 - 1e-12)


def test_identical_rebuild_is_noop(artifact):
    directory, first = artifact
    assert first.rebuilt
    rerun = build_tables(TINY_SPEC, out_dir=directory)
    assert not rerun.rebuilt
    assert np.array_equal(rerun.tables.forward, first.tables.forward)


def test_single_query_speedup_floor(oracle, benchmark):
    spec = oracle.spec
    rng = np.random.default_rng(QUERY_SEED)
    alphas, fractions, deltas, depths = random_queries(
        spec, SINGLE_QUERIES, rng
    )

    def single_queries():
        total = 0.0
        for index in range(SINGLE_QUERIES):
            total += oracle.violation_probability(
                alphas[index],
                fractions[index],
                deltas[index],
                depths[index],
            )
        return total

    benchmark(single_queries)
    start = time.perf_counter()
    single_queries()
    oracle_per_query = (time.perf_counter() - start) / SINGLE_QUERIES

    start = time.perf_counter()
    for i, j, l, alpha, fraction, delta in list(spec.combos())[:DP_SAMPLES]:
        settlement_violation_probability(
            effective_probabilities(alpha, fraction, delta, spec.activity),
            spec.depth_horizon,
        )
    dp_per_query = (time.perf_counter() - start) / DP_SAMPLES

    speedup = dp_per_query / oracle_per_query
    benchmark.extra_info["per_query_speedup"] = round(speedup, 1)
    assert speedup >= PER_QUERY_FLOOR, (
        f"oracle scalar query only {speedup:.1f}x faster than the DP "
        f"(floor {PER_QUERY_FLOOR}x)"
    )


def test_batch_throughput_floor(oracle, benchmark):
    rng = np.random.default_rng(QUERY_SEED + 1)
    columns = random_queries(oracle.spec, BATCH_QUERIES, rng)

    result = benchmark(oracle.violation_probabilities, *columns)
    assert result.shape == (BATCH_QUERIES,)

    start = time.perf_counter()
    oracle.violation_probabilities(*columns)
    elapsed = time.perf_counter() - start
    throughput = BATCH_QUERIES / elapsed
    benchmark.extra_info["queries_per_second"] = round(throughput)
    assert throughput >= BATCH_FLOOR, (
        f"batch path serves {throughput:.0f} queries/s "
        f"(floor {BATCH_FLOOR:.0f})"
    )
