"""E9 — Theorem 8: common-prefix violations via UVP-free windows.

Measures the rate of sampled strings whose every length-k window is
certified by a UVP slot (so k-CP^slot holds), against the T·e^{−Ω(k)}
union bound, for both the standard and the consistent-tie-breaking UVP
notions.
"""

import random

import pytest

from bench_config import SEEDS, TRIALS
from repro.analysis.bounds import (
    theorem8_cp_bound,
    theorem8_cp_bound_consistent,
)
from repro.analysis.cp import estimate_cp_violation_rate, uvp_free_windows
from repro.core.distributions import bernoulli_condition, bivalent_condition


def test_cp_bound_vs_measured_rate(benchmark):
    epsilon, p_unique = 0.5, 0.5
    probabilities = bernoulli_condition(epsilon, p_unique)
    total_length, depth = 150, 30
    rng = random.Random(SEEDS["cp_measured_rate"])

    rate = benchmark.pedantic(
        estimate_cp_violation_rate,
        args=(probabilities, total_length, depth, TRIALS["cp_measured_rate"], rng),
        rounds=1,
        iterations=1,
    )

    bound = theorem8_cp_bound(total_length, epsilon, p_unique, depth)
    assert bound >= rate - 0.05
    benchmark.extra_info["measured"] = f"{rate:.4f}"
    benchmark.extra_info["bound"] = f"{bound:.4f}"


def test_cp_bound_scales_linearly_in_length(benchmark):
    epsilon, p_unique, depth = 0.4, 0.4, 80

    def bounds():
        return [
            theorem8_cp_bound(t, epsilon, p_unique, depth)
            for t in (100, 1000, 10000)
        ]

    values = benchmark(bounds)
    assert values == sorted(values)
    if values[1] < 1.0:
        assert values[1] == pytest.approx(values[0] * 10, rel=1e-6)


def test_consistent_windows_on_bivalent_strings(benchmark):
    """With p_h = 0 only the A0′ notion certifies CP windows at all."""
    probabilities = bivalent_condition(0.4)
    rng = random.Random(SEEDS["cp_bivalent_windows"])

    def measure():
        from repro.core.distributions import sample_characteristic_string

        plain_hits = consistent_hits = 0
        trials = TRIALS["cp_bivalent_windows"]
        for _ in range(trials):
            word = sample_characteristic_string(probabilities, 120, rng)
            if not uvp_free_windows(word, 25, consistent=False):
                plain_hits += 1
            if not uvp_free_windows(word, 25, consistent=True):
                consistent_hits += 1
        return plain_hits / trials, consistent_hits / trials

    plain, consistent = benchmark.pedantic(measure, rounds=1, iterations=1)

    assert plain == 0.0  # no uniquely honest slots: no plain UVP certificates
    assert consistent > 0.05  # consecutive Catalan pairs do certify strings
    bound = theorem8_cp_bound_consistent(120, 0.4, 25)
    benchmark.extra_info["certified_fraction"] = f"{consistent:.3f}"
    benchmark.extra_info["bound"] = f"{bound:.3f}"
