"""E1 — Table 1: exact probabilities of k-settlement violations.

Regenerates a representative sub-grid of the paper's Table 1 with the
Section 6.6 exact algorithm and asserts agreement with the printed
values to their 3 published digits.  The full 180-cell grid is produced
by ``examples/generate_table1.py`` (≈ 7 minutes); this benchmark keeps
per-cell cost low by using the k = 100 and k = 200 rows.

Run: ``pytest benchmarks/bench_table1_settlement.py --benchmark-only``
"""

import pytest

from bench_config import TRIALS
from repro.analysis.exact import (
    compute_settlement_probabilities,
    settlement_violation_probability,
)
from repro.core.distributions import from_adversarial_stake
from repro.data.table1 import PAPER_TABLE1
from repro.engine import cache_from_env, get_grid, run_grid

#: One full row group (fraction 0.8) and one full column (α = 0.30).
ROW_CELLS = [(0.8, alpha, 100) for alpha in (0.01, 0.10, 0.20, 0.30, 0.40, 0.49)]
COLUMN_CELLS = [(frac, 0.30, 200) for frac in (1.0, 0.9, 0.8, 0.5, 0.25, 0.01)]


@pytest.mark.parametrize("fraction,alpha,depth", ROW_CELLS + COLUMN_CELLS)
def test_table1_cell(benchmark, fraction, alpha, depth):
    probabilities = from_adversarial_stake(alpha, fraction)

    value = benchmark(
        settlement_violation_probability, probabilities, depth
    )

    expected = PAPER_TABLE1[(fraction, alpha, depth)]
    assert value == pytest.approx(expected, rel=6e-3), (
        f"(frac={fraction}, α={alpha}, k={depth}): "
        f"got {value:.4E}, paper {expected:.4E}"
    )
    benchmark.extra_info["paper"] = f"{expected:.3E}"
    benchmark.extra_info["reproduced"] = f"{value:.3E}"


def test_table1_block_sweep(benchmark):
    """One DP run serving a whole block column (k = 100..400), as Table 1
    is actually produced; checks every depth against the paper."""
    probabilities = from_adversarial_stake(0.30, 0.5)
    depths = [100, 200, 300, 400]

    computation = benchmark(
        compute_settlement_probabilities, probabilities, depths
    )

    for depth in depths:
        expected = PAPER_TABLE1[(0.5, 0.30, depth)]
        assert computation[depth] == pytest.approx(expected, rel=6e-3)


def test_table1_monte_carlo_grid(benchmark):
    """The registered "table1" sweep grid — the table's (α, p_h/(1−α), k)
    structure at Monte-Carlo-resolvable depths — orchestrated by the
    sweep layer and cross-checked point-by-point against the exact DP."""
    grid = get_grid("table1")
    trials = TRIALS["table1_mc_sweep"]

    rows = benchmark.pedantic(
        run_grid,
        args=(grid,),
        kwargs={"trials": trials, "cache": cache_from_env()},
        rounds=1,
        iterations=1,
    )

    assert len(rows) == grid.size()
    for row in rows:
        probabilities = from_adversarial_stake(
            row["alpha"], row["unique_fraction"]
        )
        exact = settlement_violation_probability(probabilities, row["depth"])
        slack = 4 * row["standard_error"] + 1e-12
        assert abs(row["value"] - exact) <= slack, (row, exact)
